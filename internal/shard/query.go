package shard

import (
	"context"
	"sort"

	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/rtree"
	"dynq/internal/trajectory"
)

// Snapshot answers one spatio-temporal range query by fanning the search
// out across every shard and concatenating the per-shard answers in shard
// order (deterministic for an unchanged engine). limit > 0 caps both the
// per-shard traversals and the merged answer; which matches survive the
// cap is unspecified. The context is checked at node-visit granularity
// inside every shard.
func (e *Engine) Snapshot(ctx context.Context, spatial geom.Box, tw geom.Interval, limit int) ([]rtree.Match, error) {
	parts := make([][]rtree.Match, len(e.shards))
	err := e.fanOutTraced(ctx, "snapshot/shard", "snapshot", func(i int, sh *Shard) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		ms, err := sh.Tree.RangeSearchCtx(ctx, spatial, tw, rtree.SearchOptions{Limit: limit}, &sh.Counters)
		parts[i] = ms
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []rtree.Match
	for _, ms := range parts {
		out = append(out, ms...)
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// KNN finds the k nearest neighbors by running a best-first search on
// every shard in parallel and k-way merging the per-shard answer lists
// (each already sorted by distance, ties by id) down to the global top k.
func (e *Engine) KNN(ctx context.Context, p geom.Point, t float64, k int) ([]core.Neighbor, error) {
	parts := make([][]core.Neighbor, len(e.shards))
	err := e.fanOutTraced(ctx, "knn/shard", "knn", func(i int, sh *Shard) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		nbs, err := core.KNNCtx(ctx, sh.Tree, p, t, k, &sh.Counters)
		parts[i] = nbs
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []core.Neighbor
	for _, nbs := range parts {
		out = append(out, nbs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// SelfJoin finds every pair of objects within delta of each other at time
// t across the whole sharded population: the N self-joins plus the
// N·(N-1)/2 cross-shard joins all run in parallel on the worker pool.
// Pairs are normalized to A < B (an object pair spans at most one task,
// so no deduplication is needed) and sorted for a deterministic answer.
func (e *Engine) SelfJoin(delta, t float64) ([]core.JoinPair, error) {
	n := len(e.shards)
	var fns []func() error
	parts := make([][]core.JoinPair, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			i, j := i, j
			slot := len(fns)
			fns = append(fns, func() error {
				a, b := e.shards[i], e.shards[j]
				// Both shard locks, in ascending shard order (i <= j):
				// with writers holding at most one shard lock and every
				// multi-shard reader ordering ascending, no cycle forms.
				a.mu.RLock()
				defer a.mu.RUnlock()
				if j != i {
					b.mu.RLock()
					defer b.mu.RUnlock()
				}
				pairs, err := core.DistanceJoin(a.Tree, b.Tree, delta, t, &a.Counters)
				parts[slot] = pairs
				return err
			})
		}
	}
	if err := e.run(fns); err != nil {
		return nil, err
	}
	var out []core.JoinPair
	for _, pairs := range parts {
		for _, p := range pairs {
			if p.A > p.B {
				p.A, p.B = p.B, p.A
				p.SegA, p.SegB = p.SegB, p.SegA
			}
			out = append(out, p)
		}
	}
	sortPairs(out)
	return out, nil
}

// CrossJoin finds every pair (a ∈ e, b ∈ other) within delta at time t:
// one task per shard pair, merged and sorted deterministically.
func (e *Engine) CrossJoin(other *Engine, delta, t float64) ([]core.JoinPair, error) {
	n, m := len(e.shards), len(other.shards)
	fns := make([]func() error, 0, n*m)
	parts := make([][]core.JoinPair, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			i, j := i, j
			fns = append(fns, func() error {
				// No shard locks here: two engines have no common lock
				// order (JoinWith can run in both directions at once), so
				// taking both could deadlock. The trees' own whole-search
				// locks keep the join memory-safe; what it can observe is
				// a concurrent batch half-applied to the OTHER engine.
				a, b := e.shards[i], other.shards[j]
				pairs, err := core.DistanceJoin(a.Tree, b.Tree, delta, t, &a.Counters)
				parts[i*m+j] = pairs
				return err
			})
		}
	}
	if err := e.run(fns); err != nil {
		return nil, err
	}
	var out []core.JoinPair
	for _, pairs := range parts {
		out = append(out, pairs...)
	}
	sortPairs(out)
	return out, nil
}

// CountSeries evaluates the continuous COUNT(*) of a moving view on every
// shard in parallel and sums the per-shard series element-wise (the
// trajectory is read-only and safely shared across tasks).
func (e *Engine) CountSeries(traj *trajectory.Trajectory, times []float64) ([]int, error) {
	parts := make([][]int, len(e.shards))
	err := e.fanOut(func(i int, sh *Shard) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		cs, err := core.ContinuousCount(sh.Tree, traj, times, &sh.Counters)
		parts[i] = cs
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make([]int, len(times))
	for _, cs := range parts {
		for i, c := range cs {
			out[i] += c
		}
	}
	return out, nil
}

func sortPairs(out []core.JoinPair) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		if out[i].SegA.T.Lo != out[j].SegA.T.Lo {
			return out[i].SegA.T.Lo < out[j].SegA.T.Lo
		}
		return out[i].SegB.T.Lo < out[j].SegB.T.Lo
	})
}
