// Package tpr implements a Time-Parameterized R-tree — the specialized
// index for the *current and anticipated* positions of mobile objects
// introduced by Šaltenis et al. (the paper's reference [19]) — and adapts
// the dynamic-query machinery to it, which is the paper's future work
// (iii): "adapting dynamic queries to a specialized index for mobile
// objects such as TPR-tree".
//
// Where the NSI R-tree stores the full motion history (one segment per
// update), a TPR-tree holds exactly one entry per object: its last
// reported position and velocity. Bounding rectangles are
// time-parameterized — each border moves at the extreme velocity of the
// subtree — so they bound every object now and at any future time.
// Queries ask about the present or the anticipated future: "who is (will
// be) inside this window at time t / during [t1,t2] / along this
// trajectory".
//
// The tree is an in-memory structure (current-state indexes are much
// smaller than histories: one entry per object); node visits are still
// charged to stats.Counters with the same leaf/internal accounting as the
// disk-based index, so costs are comparable.
package tpr

import (
	"fmt"
	"math"

	"dynq/internal/geom"
)

// Entry is the current motion state of one object: at RefTime it was at
// Pos moving with velocity Vel (Equation 1 of the paper, open-ended).
type Entry struct {
	ID      uint64
	RefTime float64
	Pos     geom.Point
	Vel     geom.Point
}

// posAt returns the anticipated position at time t (t ≥ RefTime).
func (e Entry) posAt(t float64) geom.Point {
	p := make(geom.Point, len(e.Pos))
	for i := range p {
		p[i] = e.Pos[i] + e.Vel[i]*(t-e.RefTime)
	}
	return p
}

// coord returns coordinate i as a linear function of time.
func (e Entry) coord(i int) geom.Linear {
	return geom.Linear{A: e.Pos[i], B: e.Vel[i], T0: e.RefTime}
}

// tpbr is a time-parameterized bounding rectangle: at time t its extent
// along dimension i is [PosLo(t), PosHi(t)] with each border moving at
// the subtree's extreme velocity. Conservative for all t ≥ Ref.
type tpbr struct {
	ref          float64
	posLo, posHi geom.Point
	velLo, velHi geom.Point
}

func emptyTPBR(dims int) tpbr {
	b := tpbr{
		ref:   0,
		posLo: make(geom.Point, dims),
		posHi: make(geom.Point, dims),
		velLo: make(geom.Point, dims),
		velHi: make(geom.Point, dims),
	}
	for i := 0; i < dims; i++ {
		b.posLo[i], b.posHi[i] = math.Inf(1), math.Inf(-1)
	}
	return b
}

func (b tpbr) empty() bool { return len(b.posLo) == 0 || b.posLo[0] > b.posHi[0] }

// rebase returns the equivalent tpbr referenced at time t ≥ b.ref. The
// result never aliases b's slices: callers mutate rebased bounds for
// what-if computations (chooseChild), so sharing would corrupt the tree.
func (b tpbr) rebase(t float64) tpbr {
	if b.empty() {
		return b
	}
	dt := t - b.ref
	nb := tpbr{ref: t,
		posLo: make(geom.Point, len(b.posLo)), posHi: make(geom.Point, len(b.posHi)),
		velLo: append(geom.Point(nil), b.velLo...), velHi: append(geom.Point(nil), b.velHi...),
	}
	for i := range b.posLo {
		nb.posLo[i] = b.posLo[i] + b.velLo[i]*dt
		nb.posHi[i] = b.posHi[i] + b.velHi[i]*dt
	}
	return nb
}

// addEntry grows the tpbr to cover an entry for all t ≥ max(ref, e.RefTime).
func (b tpbr) addEntry(e Entry) tpbr {
	if b.empty() {
		nb := tpbr{ref: e.RefTime,
			posLo: append(geom.Point(nil), e.Pos...), posHi: append(geom.Point(nil), e.Pos...),
			velLo: append(geom.Point(nil), e.Vel...), velHi: append(geom.Point(nil), e.Vel...),
		}
		return nb
	}
	ref := math.Max(b.ref, e.RefTime)
	nb := b.rebase(ref)
	for i := range nb.posLo {
		p := e.Pos[i] + e.Vel[i]*(ref-e.RefTime)
		nb.posLo[i] = math.Min(nb.posLo[i], p)
		nb.posHi[i] = math.Max(nb.posHi[i], p)
		nb.velLo[i] = math.Min(nb.velLo[i], e.Vel[i])
		nb.velHi[i] = math.Max(nb.velHi[i], e.Vel[i])
	}
	return nb
}

// union grows the tpbr to cover another tpbr.
func (b tpbr) union(o tpbr) tpbr {
	if b.empty() {
		return o
	}
	if o.empty() {
		return b
	}
	ref := math.Max(b.ref, o.ref)
	nb, no := b.rebase(ref), o.rebase(ref)
	for i := range nb.posLo {
		nb.posLo[i] = math.Min(nb.posLo[i], no.posLo[i])
		nb.posHi[i] = math.Max(nb.posHi[i], no.posHi[i])
		nb.velLo[i] = math.Min(nb.velLo[i], no.velLo[i])
		nb.velHi[i] = math.Max(nb.velHi[i], no.velHi[i])
	}
	return nb
}

// boxAt returns the (static) box bounding the subtree at time t ≥ ref.
func (b tpbr) boxAt(t float64) geom.Box {
	dt := t - b.ref
	if dt < 0 {
		dt = 0
	}
	box := make(geom.Box, len(b.posLo))
	for i := range box {
		box[i] = geom.Interval{Lo: b.posLo[i] + b.velLo[i]*dt, Hi: b.posHi[i] + b.velHi[i]*dt}
	}
	return box
}

// overlapWindow returns the sub-interval of tw during which the tpbr can
// overlap the static window (linear borders → linear inequalities).
// Callers guarantee tw.Lo ≥ b.ref (the tree only answers queries at or
// after its latest update, the anticipated-future semantics of a TPR
// index), so the parameterized borders are valid over all of tw.
func (b tpbr) overlapWindow(w geom.Box, tw geom.Interval) geom.Interval {
	iv := tw
	for i := 0; i < len(w) && !iv.Empty(); i++ {
		lo := geom.Linear{A: b.posLo[i], B: b.velLo[i], T0: b.ref}
		hi := geom.Linear{A: b.posHi[i], B: b.velHi[i], T0: b.ref}
		iv = lo.SolveLE(w[i].Hi, iv)
		iv = hi.SolveGE(w[i].Lo, iv)
	}
	return iv
}

// integralArea is the TPR-tree's optimization metric: the box area
// integrated (approximated by the endpoint average) over [t0, t0+h].
func (b tpbr) integralArea(t0, h float64) float64 {
	if b.empty() {
		return 0
	}
	return (b.boxAt(t0).Area() + b.boxAt(t0+h).Area()) / 2
}

type node struct {
	leaf     bool
	bound    tpbr
	children []*node
	entries  []Entry
}

// Tree is an in-memory TPR-tree. Not safe for concurrent use.
type Tree struct {
	dims       int
	horizon    float64
	maxEntries int
	minEntries int
	root       *node
	byID       map[uint64]Entry
	now        float64 // latest reference time seen (for the metric)
}

// New creates a TPR-tree for d-dimensional motion. horizon is the time
// window over which bounding quality is optimized (Šaltenis et al.'s H) —
// choose it near the expected time between motion updates: too large a
// horizon makes the metric cluster by velocity and the anticipated bounds
// balloon. fanout is the node capacity (32 is a reasonable in-memory
// default).
func New(dims int, horizon float64, fanout int) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("tpr: dims must be positive")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("tpr: horizon must be positive")
	}
	if fanout < 4 {
		return nil, fmt.Errorf("tpr: fanout must be at least 4")
	}
	return &Tree{
		dims:       dims,
		horizon:    horizon,
		maxEntries: fanout,
		minEntries: fanout * 2 / 5,
		byID:       make(map[uint64]Entry),
	}, nil
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return len(t.byID) }

// Update inserts or replaces an object's motion state. RefTime must not
// decrease for the same object.
func (t *Tree) Update(e Entry) error {
	if len(e.Pos) != t.dims || len(e.Vel) != t.dims {
		return fmt.Errorf("tpr: entry has wrong dimensionality")
	}
	if old, ok := t.byID[e.ID]; ok {
		if e.RefTime < old.RefTime {
			return fmt.Errorf("tpr: stale update for object %d (%g < %g)", e.ID, e.RefTime, old.RefTime)
		}
		if !t.remove(old) {
			return fmt.Errorf("tpr: internal inconsistency: object %d not found for replacement", e.ID)
		}
		delete(t.byID, e.ID)
	}
	e = Entry{ID: e.ID, RefTime: e.RefTime,
		Pos: append(geom.Point(nil), e.Pos...), Vel: append(geom.Point(nil), e.Vel...)}
	t.insert(e)
	t.byID[e.ID] = e
	if e.RefTime > t.now {
		t.now = e.RefTime
	}
	return nil
}

// Remove deletes an object's state, reporting whether it was present.
func (t *Tree) Remove(id uint64) bool {
	e, ok := t.byID[id]
	if !ok {
		return false
	}
	t.remove(e)
	delete(t.byID, id)
	return true
}

// Get returns the current motion state of an object.
func (t *Tree) Get(id uint64) (Entry, bool) {
	e, ok := t.byID[id]
	return e, ok
}
