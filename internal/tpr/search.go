package tpr

import (
	"fmt"
	"math"

	"dynq/internal/geom"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

// Match is one query answer: the object's current motion state and the
// time interval during which it satisfies the query.
type Match struct {
	Entry   Entry
	Overlap geom.Interval
}

// Now returns the latest reference time in the tree — queries must not
// start before it.
func (t *Tree) Now() float64 { return t.now }

func (t *Tree) checkQuery(w geom.Box, tw geom.Interval) error {
	if len(w) != t.dims {
		return fmt.Errorf("tpr: query has %d dims, tree has %d", len(w), t.dims)
	}
	if tw.Empty() {
		return fmt.Errorf("tpr: query time window is empty")
	}
	if tw.Lo < t.now {
		return fmt.Errorf("tpr: query window starts at %g, before the tree's current time %g (the TPR index answers present/future queries; use the NSI index for history)", tw.Lo, t.now)
	}
	return nil
}

// SearchDuring returns every object anticipated to be inside the window
// at some time in tw, with the exact time interval it stays inside
// (assuming motion states do not change). One visit per node is charged
// to c with the usual leaf/internal accounting.
func (t *Tree) SearchDuring(w geom.Box, tw geom.Interval, c *stats.Counters) ([]Match, error) {
	if err := t.checkQuery(w, tw); err != nil {
		return nil, err
	}
	var out []Match
	if t.root != nil {
		t.searchNode(t.root, w, tw, c, &out)
	}
	c.AddResults(len(out))
	return out, nil
}

// SearchAt returns every object anticipated to be inside the window at
// the single time instant tq.
func (t *Tree) SearchAt(w geom.Box, tq float64, c *stats.Counters) ([]Match, error) {
	return t.SearchDuring(w, geom.IntervalOf(tq), c)
}

func (t *Tree) searchNode(n *node, w geom.Box, tw geom.Interval, c *stats.Counters, out *[]Match) {
	c.AddRead(n.leaf)
	if n.leaf {
		for _, e := range n.entries {
			c.AddDistanceComps(1)
			iv := tw
			for i := 0; i < t.dims && !iv.Empty(); i++ {
				iv = e.coord(i).SolveBetween(w[i].Lo, w[i].Hi, iv)
			}
			if !iv.Empty() {
				*out = append(*out, Match{Entry: e, Overlap: iv})
			}
		}
		return
	}
	for _, ch := range n.children {
		c.AddDistanceComps(1)
		if !ch.bound.overlapWindow(w, tw).Empty() {
			t.searchNode(ch, w, tw, c, out)
		}
	}
}

// SearchTrajectory adapts the predictive dynamic query to the TPR index
// (the paper's future work (iii)): given the observer's trajectory, it
// returns each object anticipated to enter the moving window, with its
// visibility episodes — computed against the objects' *current* motion
// states. Both the window borders and the anticipated positions are
// linear in time, so node pruning and the exact per-object test reduce to
// the same linear-inequality machinery as PDQ. The trajectory must not
// start before the tree's current time.
func (t *Tree) SearchTrajectory(traj *trajectory.Trajectory, c *stats.Counters) ([]Match, error) {
	if traj.Dims() != t.dims {
		return nil, fmt.Errorf("tpr: trajectory has %d dims, tree has %d", traj.Dims(), t.dims)
	}
	if traj.TimeSpan().Lo < t.now {
		return nil, fmt.Errorf("tpr: trajectory starts at %g, before the tree's current time %g", traj.TimeSpan().Lo, t.now)
	}
	var out []Match
	if t.root != nil {
		t.searchTrajNode(t.root, traj, c, &out)
	}
	c.AddResults(len(out))
	return out, nil
}

func (t *Tree) searchTrajNode(n *node, traj *trajectory.Trajectory, c *stats.Counters, out *[]Match) {
	c.AddRead(n.leaf)
	keys := traj.Keys()
	if n.leaf {
		for _, e := range n.entries {
			c.AddDistanceComps(1)
			var set geom.IntervalSet
			for j := 0; j+1 < len(keys); j++ {
				set.Add(t.entryVsTrapezoid(e, keys[j], keys[j+1]))
			}
			if !set.Empty() {
				*out = append(*out, Match{Entry: e, Overlap: set.Hull()})
			}
		}
		return
	}
	for _, ch := range n.children {
		c.AddDistanceComps(1)
		visit := false
		for j := 0; j+1 < len(keys) && !visit; j++ {
			if !t.tpbrVsTrapezoid(ch.bound, keys[j], keys[j+1]).Empty() {
				visit = true
			}
		}
		if visit {
			t.searchTrajNode(ch, traj, c, out)
		}
	}
}

// entryVsTrapezoid returns the times in [a.T, b.T] during which the
// anticipated position lies inside the interpolated window.
func (t *Tree) entryVsTrapezoid(e Entry, a, b trajectory.Key) geom.Interval {
	iv := geom.Interval{Lo: a.T, Hi: b.T}
	for i := 0; i < t.dims && !iv.Empty(); i++ {
		winLo := geom.LinearBetween(a.T, a.Window[i].Lo, b.T, b.Window[i].Lo)
		winHi := geom.LinearBetween(a.T, a.Window[i].Hi, b.T, b.Window[i].Hi)
		x := e.coord(i)
		iv = x.Sub(winLo).SolveGE(0, iv)
		iv = winHi.Sub(x).SolveGE(0, iv)
	}
	return iv
}

// tpbrVsTrapezoid returns the times in [a.T, b.T] during which the moving
// bound can overlap the interpolated window.
func (t *Tree) tpbrVsTrapezoid(b tpbr, a, k trajectory.Key) geom.Interval {
	iv := geom.Interval{Lo: a.T, Hi: k.T}
	for i := 0; i < t.dims && !iv.Empty(); i++ {
		winLo := geom.LinearBetween(a.T, a.Window[i].Lo, k.T, k.Window[i].Lo)
		winHi := geom.LinearBetween(a.T, a.Window[i].Hi, k.T, k.Window[i].Hi)
		bLo := geom.Linear{A: b.posLo[i], B: b.velLo[i], T0: b.ref}
		bHi := geom.Linear{A: b.posHi[i], B: b.velHi[i], T0: b.ref}
		// Overlap: bound's lower border ≤ window's upper AND bound's
		// upper ≥ window's lower.
		iv = bLo.Sub(winHi).SolveLE(0, iv)
		iv = bHi.Sub(winLo).SolveGE(0, iv)
	}
	return iv
}

// --- insertion / deletion ------------------------------------------------

func (t *Tree) insert(e Entry) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	if split := t.insertAt(t.root, e); split != nil {
		old := t.root
		t.root = &node{
			leaf:     false,
			children: []*node{old, split},
		}
		t.root.bound = old.bound.union(split.bound)
	}
}

func (t *Tree) insertAt(n *node, e Entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		n.bound = n.bound.addEntry(e)
		if len(n.entries) > t.maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := t.chooseChild(n, e)
	if split := t.insertAt(n.children[best], e); split != nil {
		n.children = append(n.children, split)
		// The new entry may live in the sibling, so the parent bound must
		// absorb it too.
		n.bound = n.bound.union(split.bound)
		if len(n.children) > t.maxEntries {
			nb := t.splitInternal(n)
			n.bound = boundOfChildren(n.children)
			return nb
		}
	}
	n.bound = n.bound.union(n.children[best].bound)
	return nil
}

// chooseChild picks the child whose integral-area metric grows least.
func (t *Tree) chooseChild(n *node, e Entry) int {
	best, bestCost := 0, math.Inf(1)
	for i, ch := range n.children {
		before := ch.bound.integralArea(t.now, t.horizon)
		after := ch.bound.addEntry(e).integralArea(t.now, t.horizon)
		cost := after - before
		if cost < bestCost || (cost == bestCost && after < ch.bound.integralArea(t.now, t.horizon)) {
			best, bestCost = i, cost
		}
	}
	return best
}

// splitLeaf partitions an over-full leaf by the dimension/order with the
// lowest summed integral metric (an R*-flavoured split on anticipated
// positions at now+horizon/2).
func (t *Tree) splitLeaf(n *node) *node {
	mid := t.now + t.horizon/2
	order := bestSplitOrder(len(n.entries), t.dims, func(i, d int) float64 {
		return n.entries[i].posAt(mid)[d]
	})
	half := len(n.entries) / 2
	keep := make([]Entry, 0, half)
	move := make([]Entry, 0, len(n.entries)-half)
	for k, idx := range order {
		if k < half {
			keep = append(keep, n.entries[idx])
		} else {
			move = append(move, n.entries[idx])
		}
	}
	n.entries = keep
	n.bound = boundOfEntries(keep)
	sib := &node{leaf: true, entries: move, bound: boundOfEntries(move)}
	return sib
}

func (t *Tree) splitInternal(n *node) *node {
	mid := t.now + t.horizon/2
	order := bestSplitOrder(len(n.children), t.dims, func(i, d int) float64 {
		b := n.children[i].bound.boxAt(mid)
		return b[d].Mid()
	})
	half := len(n.children) / 2
	keep := make([]*node, 0, half)
	move := make([]*node, 0, len(n.children)-half)
	for k, idx := range order {
		if k < half {
			keep = append(keep, n.children[idx])
		} else {
			move = append(move, n.children[idx])
		}
	}
	n.children = keep
	n.bound = boundOfChildren(keep)
	return &node{leaf: false, children: move, bound: boundOfChildren(move)}
}

// bestSplitOrder sorts indices by the coordinate (at the evaluation time)
// of the dimension with the largest spread — a cheap axis choice that
// keeps anticipated positions clustered.
func bestSplitOrder(n, dims int, coord func(i, d int) float64) []int {
	bestDim, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := coord(i, d)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if s := hi - lo; s > bestSpread {
			bestDim, bestSpread = d, s
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	d := bestDim
	// insertion sort (n ≤ fanout+1)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && coord(order[j], d) < coord(order[j-1], d); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

func boundOfEntries(es []Entry) tpbr {
	if len(es) == 0 {
		return tpbr{}
	}
	b := emptyTPBR(len(es[0].Pos))
	for _, e := range es {
		b = b.addEntry(e)
	}
	return b
}

func boundOfChildren(cs []*node) tpbr {
	b := tpbr{}
	first := true
	for _, c := range cs {
		if first {
			b = c.bound
			first = false
		} else {
			b = b.union(c.bound)
		}
	}
	return b
}

// remove deletes the entry (found by descending bounds that can contain
// its anticipated position), condensing under-full leaves by reinsertion.
func (t *Tree) remove(e Entry) bool {
	if t.root == nil {
		return false
	}
	var orphans []Entry
	ok := t.removeAt(t.root, e, &orphans)
	if !ok {
		return false
	}
	// Shrink the root.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.leaf && len(t.root.entries) == 0 {
		t.root = nil
	}
	for _, o := range orphans {
		t.insert(o)
	}
	return true
}

func (t *Tree) removeAt(n *node, e Entry, orphans *[]Entry) bool {
	if n.leaf {
		for i, cur := range n.entries {
			if cur.ID == e.ID {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.bound = boundOfEntries(n.entries)
				return true
			}
		}
		return false
	}
	for i, ch := range n.children {
		// The entry's position at the child's reference time must lie
		// inside the child's bound for the child to possibly hold it.
		if !containsEntry(ch.bound, e) {
			continue
		}
		if !t.removeAt(ch, e, orphans) {
			continue
		}
		if underfull(ch, t.minEntries) {
			// Dissolve the child; reinsert its contents.
			n.children = append(n.children[:i], n.children[i+1:]...)
			collectEntries(ch, orphans)
		}
		n.bound = boundOfChildren(n.children)
		return true
	}
	return false
}

func underfull(n *node, min int) bool {
	if n.leaf {
		return len(n.entries) < min
	}
	return len(n.children) < min
}

func collectEntries(n *node, out *[]Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, ch := range n.children {
		collectEntries(ch, out)
	}
}

// containsEntry conservatively tests whether the bound can hold the
// entry: the entry's position and velocity at the bound's reference time
// must be inside the bound's position/velocity ranges.
func containsEntry(b tpbr, e Entry) bool {
	if b.empty() {
		return false
	}
	for i := range b.posLo {
		p := e.Pos[i] + e.Vel[i]*(b.ref-e.RefTime)
		if p < b.posLo[i]-1e-9 || p > b.posHi[i]+1e-9 {
			return false
		}
		if e.Vel[i] < b.velLo[i]-1e-9 || e.Vel[i] > b.velHi[i]+1e-9 {
			return false
		}
	}
	return true
}
