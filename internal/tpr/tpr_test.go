package tpr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/stats"
	"dynq/internal/trajectory"
)

func randEntry(r *rand.Rand, id uint64, ref float64) Entry {
	return Entry{
		ID:      id,
		RefTime: ref,
		Pos:     geom.Point{r.Float64() * 100, r.Float64() * 100},
		Vel:     geom.Point{r.Float64()*2 - 1, r.Float64()*2 - 1},
	}
}

func buildTree(t testing.TB, n int, seed int64) (*Tree, []Entry) {
	t.Helper()
	// Horizon ≈ the expected time between motion updates: with random
	// velocities, a larger horizon makes the integral metric cluster by
	// velocity instead of position (bounds then grow world-sized by the
	// evaluation time).
	tree, err := New(2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = randEntry(r, uint64(i), 0)
		if err := tree.Update(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tree, entries
}

func bruteSearch(entries []Entry, w geom.Box, tw geom.Interval) map[uint64]geom.Interval {
	out := map[uint64]geom.Interval{}
	for _, e := range entries {
		iv := tw
		for i := 0; i < 2 && !iv.Empty(); i++ {
			iv = e.coord(i).SolveBetween(w[i].Lo, w[i].Hi, iv)
		}
		if !iv.Empty() {
			out[e.ID] = iv
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 16); err == nil {
		t.Error("zero dims should be rejected")
	}
	if _, err := New(2, 0, 16); err == nil {
		t.Error("zero horizon should be rejected")
	}
	if _, err := New(2, 10, 2); err == nil {
		t.Error("tiny fanout should be rejected")
	}
}

func TestUpdateAndGet(t *testing.T) {
	tree, _ := New(2, 10, 16)
	e := Entry{ID: 7, RefTime: 1, Pos: geom.Point{5, 5}, Vel: geom.Point{1, 0}}
	if err := tree.Update(e); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1 {
		t.Fatalf("len = %d", tree.Len())
	}
	got, ok := tree.Get(7)
	if !ok || got.Pos[0] != 5 {
		t.Fatalf("get = %+v %v", got, ok)
	}
	// Replace with a newer state.
	e2 := Entry{ID: 7, RefTime: 3, Pos: geom.Point{7, 5}, Vel: geom.Point{0, 1}}
	if err := tree.Update(e2); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1 {
		t.Fatalf("len after replace = %d", tree.Len())
	}
	if got, _ := tree.Get(7); got.Vel[1] != 1 {
		t.Fatalf("replacement not applied: %+v", got)
	}
	// Stale update rejected.
	if err := tree.Update(Entry{ID: 7, RefTime: 2, Pos: geom.Point{0, 0}, Vel: geom.Point{0, 0}}); err == nil {
		t.Error("stale update should be rejected")
	}
	// Wrong dims rejected.
	if err := tree.Update(Entry{ID: 8, RefTime: 0, Pos: geom.Point{1}, Vel: geom.Point{0}}); err == nil {
		t.Error("wrong dims should be rejected")
	}
	// Remove.
	if !tree.Remove(7) {
		t.Error("remove existing should report true")
	}
	if tree.Remove(7) {
		t.Error("double remove should report false")
	}
	if tree.Len() != 0 {
		t.Errorf("len = %d", tree.Len())
	}
}

func TestSearchAtMatchesBruteForce(t *testing.T) {
	tree, entries := buildTree(t, 500, 1)
	var c stats.Counters
	for _, tq := range []float64{0, 2.5, 10} {
		got, err := tree.SearchAt(geom.Box{{Lo: 30, Hi: 50}, {Lo: 30, Hi: 50}}, tq, &c)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSearch(entries, geom.Box{{Lo: 30, Hi: 50}, {Lo: 30, Hi: 50}}, geom.IntervalOf(tq))
		if len(got) != len(want) {
			t.Fatalf("t=%g: got %d, want %d", tq, len(got), len(want))
		}
		for _, m := range got {
			if _, ok := want[m.Entry.ID]; !ok {
				t.Errorf("t=%g: unexpected %d", tq, m.Entry.ID)
			}
		}
	}
}

func TestSearchDuringEpisodes(t *testing.T) {
	tree, _ := New(2, 10, 16)
	// Object crossing the window [10,20]×[0,10] from the left at speed 2.
	if err := tree.Update(Entry{ID: 1, RefTime: 0, Pos: geom.Point{0, 5}, Vel: geom.Point{2, 0}}); err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	got, err := tree.SearchDuring(geom.Box{{Lo: 10, Hi: 20}, {Lo: 0, Hi: 10}}, geom.Interval{Lo: 0, Hi: 100}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d matches", len(got))
	}
	// Inside while 10 ≤ 2t ≤ 20 ⇒ t ∈ [5,10].
	if math.Abs(got[0].Overlap.Lo-5) > 1e-9 || math.Abs(got[0].Overlap.Hi-10) > 1e-9 {
		t.Errorf("episode = %v, want [5,10]", got[0].Overlap)
	}
	// Historical query rejected after a later update raises "now".
	if err := tree.Update(Entry{ID: 2, RefTime: 50, Pos: geom.Point{0, 0}, Vel: geom.Point{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.SearchAt(geom.Box{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 10}}, 10, &c); err == nil {
		t.Error("query before the tree's current time should be rejected")
	}
	// Validation.
	if _, err := tree.SearchAt(geom.Box{{Lo: 0, Hi: 1}}, 60, &c); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := tree.SearchDuring(geom.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, geom.Interval{Lo: 61, Hi: 60}, &c); err == nil {
		t.Error("empty window should be rejected")
	}
}

func TestSearchPrunes(t *testing.T) {
	tree, _ := buildTree(t, 2000, 2)
	var c stats.Counters
	if _, err := tree.SearchAt(geom.Box{{Lo: 40, Hi: 48}, {Lo: 40, Hi: 48}}, 1, &c); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	// 2000 entries at fanout 16 → ≈125 leaves; a small window must not
	// visit most of them.
	if s.LeafReads > 60 {
		t.Errorf("small window visited %d leaves; pruning ineffective", s.LeafReads)
	}
	if s.Reads() == 0 {
		t.Error("no reads accounted")
	}
}

func TestSearchTrajectory(t *testing.T) {
	tree, entries := buildTree(t, 500, 3)
	traj, err := trajectory.New([]trajectory.Key{
		{T: 0, Window: geom.Box{{Lo: 10, Hi: 20}, {Lo: 40, Hi: 50}}},
		{T: 20, Window: geom.Box{{Lo: 60, Hi: 70}, {Lo: 40, Hi: 50}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	got, err := tree.SearchTrajectory(traj, &c)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: anticipated position inside the interpolated window.
	want := map[uint64]bool{}
	for _, e := range entries {
		for step := 0; step <= 2000; step++ {
			tt := float64(step) * 0.01
			if traj.WindowAt(tt).ContainsPoint(e.posAt(tt)) {
				want[e.ID] = true
				break
			}
		}
	}
	gotIDs := map[uint64]bool{}
	for _, m := range got {
		gotIDs[m.Entry.ID] = true
		if m.Overlap.Empty() {
			t.Errorf("object %d matched with empty episode", m.Entry.ID)
		}
	}
	for id := range want {
		if !gotIDs[id] {
			t.Errorf("object %d anticipated in view but not returned", id)
		}
	}
	// Sampling may miss sub-centisecond grazes; allow got ⊇ want but not
	// wildly larger.
	if len(gotIDs) > len(want)+5 {
		t.Errorf("returned %d objects, sampling found %d", len(gotIDs), len(want))
	}
	// Trajectory before "now" is rejected.
	if err := tree.Update(Entry{ID: 9999, RefTime: 30, Pos: geom.Point{0, 0}, Vel: geom.Point{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.SearchTrajectory(traj, &c); err == nil {
		t.Error("past trajectory should be rejected")
	}
}

// Property: after any churn of updates and removes, SearchAt equals brute
// force over the surviving states.
func TestChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree, err := New(2, 10, 8) // small fanout → deep tree
		if err != nil {
			return false
		}
		live := map[uint64]Entry{}
		now := 0.0
		for step := 0; step < 300; step++ {
			switch r.Intn(5) {
			case 0, 1, 2: // upsert
				id := uint64(r.Intn(60))
				if old, ok := live[id]; ok && old.RefTime > now {
					now = old.RefTime
				}
				e := randEntry(r, id, now)
				if err := tree.Update(e); err != nil {
					return false
				}
				live[id] = e
			case 3: // remove
				id := uint64(r.Intn(60))
				_, had := live[id]
				if tree.Remove(id) != had {
					return false
				}
				delete(live, id)
			case 4: // advance time
				now += r.Float64()
			}
		}
		if tree.Len() != len(live) {
			return false
		}
		var entries []Entry
		for _, e := range live {
			entries = append(entries, e)
		}
		var c stats.Counters
		for k := 0; k < 5; k++ {
			lo0, lo1 := r.Float64()*80, r.Float64()*80
			w := geom.Box{{Lo: lo0, Hi: lo0 + 15}, {Lo: lo1, Hi: lo1 + 15}}
			tq := tree.Now() + r.Float64()*10
			got, err := tree.SearchAt(w, tq, &c)
			if err != nil {
				return false
			}
			want := bruteSearch(entries, w, geom.IntervalOf(tq))
			if len(got) != len(want) {
				return false
			}
			for _, m := range got {
				if _, ok := want[m.Entry.ID]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTPBRRebaseAndUnion(t *testing.T) {
	a := tpbr{}
	a = a.addEntry(Entry{ID: 1, RefTime: 0, Pos: geom.Point{0, 0}, Vel: geom.Point{1, 0}})
	a = a.addEntry(Entry{ID: 2, RefTime: 0, Pos: geom.Point{10, 10}, Vel: geom.Point{-1, 0}})
	// At t=0: x ∈ [0,10]; at t=5 the box must still contain both objects
	// (x=5 each).
	b5 := a.boxAt(5)
	if !b5[0].ContainsValue(5) {
		t.Errorf("boxAt(5) = %v should contain x=5", b5)
	}
	// Conservative: the box can only grow at border speed.
	if b5[0].Lo < -5-1e-9 || b5[0].Hi > 15+1e-9 {
		t.Errorf("boxAt(5) = %v, want within the border-speed bound [-5,15]", b5)
	}
	// Union with a later-referenced bound.
	var o tpbr
	o = o.addEntry(Entry{ID: 3, RefTime: 2, Pos: geom.Point{50, 50}, Vel: geom.Point{0, 1}})
	u := a.union(o)
	if u.empty() {
		t.Fatal("union empty")
	}
	bu := u.boxAt(2)
	if !bu[0].ContainsValue(50) || !bu[1].ContainsValue(50) {
		t.Errorf("union boxAt(2) = %v should contain (50,50)", bu)
	}
	// Everything covered at later times too.
	bu10 := u.boxAt(10)
	for _, e := range []Entry{
		{RefTime: 0, Pos: geom.Point{0, 0}, Vel: geom.Point{1, 0}},
		{RefTime: 0, Pos: geom.Point{10, 10}, Vel: geom.Point{-1, 0}},
		{RefTime: 2, Pos: geom.Point{50, 50}, Vel: geom.Point{0, 1}},
	} {
		if !bu10.ContainsPoint(e.posAt(10)) {
			t.Errorf("union boxAt(10) = %v misses %v", bu10, e.posAt(10))
		}
	}
}

// Property: a node's tpbr contains every entry's anticipated position at
// every future sample time (the fundamental TPR invariant), verified by
// walking the real tree.
func TestTPBRInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree, entries := buildTree(t, 200, seed)
		for _, tt := range []float64{0, 1, 3.7, 9} {
			boxAll := tree.root.bound.boxAt(tt)
			for _, e := range entries {
				if _, ok := tree.byID[e.ID]; !ok {
					continue
				}
				if !boxAll.ContainsPoint(e.posAt(tt)) {
					return false
				}
			}
			if !checkNode(tree.root, tt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func checkNode(n *node, t float64) bool {
	box := n.bound.boxAt(t)
	if n.leaf {
		for _, e := range n.entries {
			if !box.ContainsPoint(e.posAt(t)) {
				return false
			}
		}
		return true
	}
	for _, ch := range n.children {
		chBox := ch.bound.boxAt(t)
		for i := range box {
			if chBox[i].Lo < box[i].Lo-1e-6 || chBox[i].Hi > box[i].Hi+1e-6 {
				return false
			}
		}
		if !checkNode(ch, t) {
			return false
		}
	}
	return true
}
