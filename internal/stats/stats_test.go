package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddRead(true)
	c.AddRead(true)
	c.AddRead(false)
	c.AddDistanceComps(7)
	c.AddResults(3)
	c.AddBufferHit()
	c.AddPageWrite()
	s := c.Snapshot()
	if s.LeafReads != 2 || s.InternalReads != 1 || s.Reads() != 3 {
		t.Errorf("reads = %+v", s)
	}
	if s.DistanceComps != 7 || s.Results != 3 || s.BufferHits != 1 || s.PageWrites != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Error("reset should zero everything")
	}
}

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.AddRead(true)
	c.AddDistanceComps(1)
	c.AddResults(1)
	c.AddBufferHit()
	c.AddPageWrite()
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Error("nil counters should snapshot to zero")
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	a := Snapshot{InternalReads: 5, LeafReads: 10, DistanceComps: 100, Results: 7, BufferHits: 2, PageWrites: 1}
	b := Snapshot{InternalReads: 2, LeafReads: 4, DistanceComps: 40, Results: 3, BufferHits: 1, PageWrites: 1}
	d := a.Sub(b)
	if d.InternalReads != 3 || d.LeafReads != 6 || d.DistanceComps != 60 || d.Results != 4 {
		t.Errorf("sub = %+v", d)
	}
	sum := d.Add(b)
	if sum != a {
		t.Errorf("add(sub) != original: %+v", sum)
	}
}

func TestMeanOver(t *testing.T) {
	s := Snapshot{InternalReads: 10, LeafReads: 30, DistanceComps: 200, Results: 50}
	m := s.MeanOver(10)
	if m.InternalReads != 1 || m.LeafReads != 3 || m.Reads() != 4 || m.DistanceComps != 20 || m.Results != 5 {
		t.Errorf("mean = %+v", m)
	}
	if s.MeanOver(0) != (Mean{}) {
		t.Error("MeanOver(0) should be zero")
	}
}

func TestString(t *testing.T) {
	s := Snapshot{InternalReads: 1, LeafReads: 2}
	str := s.String()
	if !strings.Contains(str, "reads=3") || !strings.Contains(str, "leaf=2") {
		t.Errorf("string = %q", str)
	}
}

// TestStringFormat locks the full human-readable format, including the
// index-maintenance cost (writes) and the buffer hit ratio.
func TestStringFormat(t *testing.T) {
	s := Snapshot{
		InternalReads: 1, LeafReads: 2, DistanceComps: 4,
		Results: 6, BufferHits: 3, PageWrites: 7, PrunedNodes: 5,
	}
	want := "reads=3 (leaf=2 internal=1) dist=4 pruned=5 results=6 writes=7 hits=3 (ratio=0.50)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMeanStringFormat(t *testing.T) {
	s := Snapshot{
		InternalReads: 1, LeafReads: 2, DistanceComps: 4,
		Results: 6, BufferHits: 3, PageWrites: 7, PrunedNodes: 5,
	}
	m := s.MeanOver(2)
	want := "reads=1.50 (leaf=1.00 internal=0.50) dist=2.00 pruned=2.50 results=3.00 writes=3.50 hits=1.50"
	if got := m.String(); got != want {
		t.Errorf("Mean.String() = %q, want %q", got, want)
	}
	if m.PageWrites != 3.5 || m.BufferHits != 1.5 || m.PrunedNodes != 2.5 {
		t.Errorf("mean = %+v", m)
	}
}

func TestHitRatio(t *testing.T) {
	if r := (Snapshot{}).HitRatio(); r != 0 {
		t.Errorf("empty hit ratio = %g", r)
	}
	s := Snapshot{BufferHits: 3, LeafReads: 2, InternalReads: 1}
	if r := s.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %g, want 0.5", r)
	}
}

func TestPrunedCounter(t *testing.T) {
	var c Counters
	c.AddPruned(3)
	c.AddPruned(2)
	if got := c.Snapshot().PrunedNodes; got != 5 {
		t.Errorf("pruned = %d, want 5", got)
	}
	a := Snapshot{PrunedNodes: 5}
	b := Snapshot{PrunedNodes: 2}
	if d := a.Sub(b); d.PrunedNodes != 3 {
		t.Errorf("sub pruned = %d", d.PrunedNodes)
	}
	if s := a.Add(b); s.PrunedNodes != 7 {
		t.Errorf("add pruned = %d", s.PrunedNodes)
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddRead(j%2 == 0)
				c.AddDistanceComps(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Reads() != 8000 || s.DistanceComps != 16000 {
		t.Errorf("concurrent totals = %+v", s)
	}
}
