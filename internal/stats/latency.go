package stats

import (
	"fmt"
	"time"
)

// DiskModel converts the paper's disk-access counts into estimated wall
// time on a concrete device, so experiment output can be read both ways
// (the counts are the ground truth; the model is a lens).
type DiskModel struct {
	Name     string
	Seek     time.Duration // positioning cost per random page read
	Transfer time.Duration // transfer cost per 4 KiB page
	Compute  time.Duration // cost per distance computation
}

// HDD2002 approximates the hardware of the paper's era: ~9 ms average
// positioning, ~25 MB/s sequential transfer, ~100 ns per geometric
// predicate on a ~1 GHz CPU.
func HDD2002() DiskModel {
	return DiskModel{Name: "hdd-2002", Seek: 9 * time.Millisecond, Transfer: 160 * time.Microsecond, Compute: 100 * time.Nanosecond}
}

// NVMe2020 approximates a modern NVMe SSD: ~80 µs random read latency,
// negligible per-page transfer at 4 KiB, ~10 ns per predicate.
func NVMe2020() DiskModel {
	return DiskModel{Name: "nvme-2020", Seek: 80 * time.Microsecond, Transfer: 2 * time.Microsecond, Compute: 10 * time.Nanosecond}
}

// Estimate converts a cost snapshot into estimated elapsed time.
func (m DiskModel) Estimate(s Snapshot) time.Duration {
	io := time.Duration(s.Reads()) * (m.Seek + m.Transfer)
	cpu := time.Duration(s.DistanceComps) * m.Compute
	return io + cpu
}

// EstimateMean converts per-query mean costs into estimated per-query
// time.
func (m DiskModel) EstimateMean(mean Mean) time.Duration {
	io := time.Duration(mean.Reads() * float64(m.Seek+m.Transfer))
	cpu := time.Duration(mean.DistanceComps * float64(m.Compute))
	return io + cpu
}

// FrameBudget reports how many queries per second the modeled device
// sustains at the given per-query mean cost — the paper's motivating
// constraint is the renderer's 15-30 snapshot queries per second.
func (m DiskModel) FrameBudget(mean Mean) float64 {
	d := m.EstimateMean(mean)
	if d <= 0 {
		return 0
	}
	return float64(time.Second) / float64(d)
}

// String renders the model parameters.
func (m DiskModel) String() string {
	return fmt.Sprintf("%s (seek %v, transfer %v/page, %v/predicate)", m.Name, m.Seek, m.Transfer, m.Compute)
}
