package stats

import (
	"strings"
	"testing"
	"time"
)

func TestDiskModelEstimate(t *testing.T) {
	m := DiskModel{Name: "test", Seek: 10 * time.Millisecond, Transfer: 0, Compute: time.Microsecond}
	s := Snapshot{InternalReads: 2, LeafReads: 8, DistanceComps: 1000}
	got := m.Estimate(s)
	want := 10*10*time.Millisecond + 1000*time.Microsecond
	if got != want {
		t.Errorf("estimate = %v, want %v", got, want)
	}
}

func TestFrameBudget(t *testing.T) {
	m := HDD2002()
	// The paper's argument: ~20 reads/query on spinning disk cannot
	// sustain a 15-30 fps renderer; ~0.5 reads/query can.
	naive := Mean{LeafReads: 15, InternalReads: 6, DistanceComps: 1300}
	pdq := Mean{LeafReads: 0.4, InternalReads: 0.1, DistanceComps: 60}
	if fps := m.FrameBudget(naive); fps > 15 {
		t.Errorf("naive on 2002 hardware sustains %.1f qps; the paper's premise needs <15", fps)
	}
	if fps := m.FrameBudget(pdq); fps < 30 {
		t.Errorf("PDQ on 2002 hardware sustains only %.1f qps; should exceed 30", fps)
	}
	// On NVMe even naive clears the renderer budget comfortably — the
	// cost model explains why the paper mattered most on its own
	// hardware.
	if fps := NVMe2020().FrameBudget(naive); fps < 100 {
		t.Errorf("naive on NVMe sustains %.1f qps; expected well above the 30 fps budget", fps)
	}
	if m.FrameBudget(Mean{}) != 0 {
		t.Error("zero cost should report zero budget (guard against division blowup)")
	}
}

func TestDiskModelString(t *testing.T) {
	if s := HDD2002().String(); !strings.Contains(s, "hdd-2002") {
		t.Errorf("string = %q", s)
	}
}
