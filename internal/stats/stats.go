// Package stats provides the cost counters used throughout the query
// engines. The paper's two performance measures (Section 5) are the number
// of disk accesses per query — reported separately for leaf and internal
// levels of the index (the split bars of Figures 6 and 10) — and the
// number of distance computations (the CPU measure of Figures 7 and 11).
package stats

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates the costs of one or more query evaluations. The
// zero value is ready to use. All methods are safe for concurrent use, so
// a single Counters can be shared between a query session and a concurrent
// update stream.
type Counters struct {
	internalReads atomic.Int64 // index node fetches above the leaf level
	leafReads     atomic.Int64 // leaf node fetches
	distanceComps atomic.Int64 // geometric predicate evaluations
	results       atomic.Int64 // objects returned
	bufferHits    atomic.Int64 // page requests served from the buffer pool
	pageWrites    atomic.Int64 // pages written (index maintenance)
}

// AddRead records a node fetch; leaf selects which level counter.
func (c *Counters) AddRead(leaf bool) {
	if c == nil {
		return
	}
	if leaf {
		c.leafReads.Add(1)
	} else {
		c.internalReads.Add(1)
	}
}

// AddDistanceComps records n geometric predicate evaluations (the paper's
// "distance computations": one per child entry examined).
func (c *Counters) AddDistanceComps(n int) {
	if c == nil {
		return
	}
	c.distanceComps.Add(int64(n))
}

// AddResults records n objects returned to the client.
func (c *Counters) AddResults(n int) {
	if c == nil {
		return
	}
	c.results.Add(int64(n))
}

// AddBufferHit records a page request satisfied without a disk access.
func (c *Counters) AddBufferHit() {
	if c == nil {
		return
	}
	c.bufferHits.Add(1)
}

// AddPageWrite records a page write.
func (c *Counters) AddPageWrite() {
	if c == nil {
		return
	}
	c.pageWrites.Add(1)
}

// Snapshot is an immutable copy of the counter values.
type Snapshot struct {
	InternalReads int64 // node fetches above the leaf level
	LeafReads     int64 // leaf node fetches
	DistanceComps int64 // geometric predicate evaluations
	Results       int64 // objects returned
	BufferHits    int64 // page requests served from buffer
	PageWrites    int64 // page writes
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		InternalReads: c.internalReads.Load(),
		LeafReads:     c.leafReads.Load(),
		DistanceComps: c.distanceComps.Load(),
		Results:       c.results.Load(),
		BufferHits:    c.bufferHits.Load(),
		PageWrites:    c.pageWrites.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.internalReads.Store(0)
	c.leafReads.Store(0)
	c.distanceComps.Store(0)
	c.results.Store(0)
	c.bufferHits.Store(0)
	c.pageWrites.Store(0)
}

// Reads returns the total number of disk accesses (leaf + internal).
func (s Snapshot) Reads() int64 { return s.InternalReads + s.LeafReads }

// Sub returns the per-operation deltas between two snapshots taken before
// and after an operation (s is "after", o is "before").
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		InternalReads: s.InternalReads - o.InternalReads,
		LeafReads:     s.LeafReads - o.LeafReads,
		DistanceComps: s.DistanceComps - o.DistanceComps,
		Results:       s.Results - o.Results,
		BufferHits:    s.BufferHits - o.BufferHits,
		PageWrites:    s.PageWrites - o.PageWrites,
	}
}

// Add returns the component-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		InternalReads: s.InternalReads + o.InternalReads,
		LeafReads:     s.LeafReads + o.LeafReads,
		DistanceComps: s.DistanceComps + o.DistanceComps,
		Results:       s.Results + o.Results,
		BufferHits:    s.BufferHits + o.BufferHits,
		PageWrites:    s.PageWrites + o.PageWrites,
	}
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("reads=%d (leaf=%d internal=%d) dist=%d results=%d hits=%d writes=%d",
		s.Reads(), s.LeafReads, s.InternalReads, s.DistanceComps, s.Results, s.BufferHits, s.PageWrites)
}

// Mean divides every component by n (for averaging over n queries);
// values are truncated toward zero. n must be positive.
type Mean struct {
	InternalReads float64
	LeafReads     float64
	DistanceComps float64
	Results       float64
}

// MeanOver returns the per-query averages of a snapshot over n queries.
func (s Snapshot) MeanOver(n int) Mean {
	if n <= 0 {
		return Mean{}
	}
	f := float64(n)
	return Mean{
		InternalReads: float64(s.InternalReads) / f,
		LeafReads:     float64(s.LeafReads) / f,
		DistanceComps: float64(s.DistanceComps) / f,
		Results:       float64(s.Results) / f,
	}
}

// Reads returns the mean total disk accesses per query.
func (m Mean) Reads() float64 { return m.InternalReads + m.LeafReads }
