// Package stats provides the cost counters used throughout the query
// engines. The paper's two performance measures (Section 5) are the number
// of disk accesses per query — reported separately for leaf and internal
// levels of the index (the split bars of Figures 6 and 10) — and the
// number of distance computations (the CPU measure of Figures 7 and 11).
package stats

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates the costs of one or more query evaluations. The
// zero value is ready to use. All methods are safe for concurrent use, so
// a single Counters can be shared between a query session and a concurrent
// update stream.
type Counters struct {
	internalReads atomic.Int64 // index node fetches above the leaf level
	leafReads     atomic.Int64 // leaf node fetches
	distanceComps atomic.Int64 // geometric predicate evaluations
	results       atomic.Int64 // objects returned
	bufferHits    atomic.Int64 // page requests served from the buffer pool
	pageWrites    atomic.Int64 // pages written (index maintenance)
	prunedNodes   atomic.Int64 // index nodes skipped by a pruning rule
}

// AddRead records a node fetch; leaf selects which level counter.
func (c *Counters) AddRead(leaf bool) {
	if c == nil {
		return
	}
	if leaf {
		c.leafReads.Add(1)
	} else {
		c.internalReads.Add(1)
	}
}

// AddDistanceComps records n geometric predicate evaluations (the paper's
// "distance computations": one per child entry examined).
func (c *Counters) AddDistanceComps(n int) {
	if c == nil {
		return
	}
	c.distanceComps.Add(int64(n))
}

// AddResults records n objects returned to the client.
func (c *Counters) AddResults(n int) {
	if c == nil {
		return
	}
	c.results.Add(int64(n))
}

// AddBufferHit records a page request satisfied without a disk access.
func (c *Counters) AddBufferHit() {
	if c == nil {
		return
	}
	c.bufferHits.Add(1)
}

// AddPageWrite records a page write.
func (c *Counters) AddPageWrite() {
	if c == nil {
		return
	}
	c.pageWrites.Add(1)
}

// AddPruned records n index nodes skipped by a pruning rule (PDQ's
// trajectory-overlap filter, NPDQ's discardability lemma) without being
// loaded.
func (c *Counters) AddPruned(n int) {
	if c == nil {
		return
	}
	c.prunedNodes.Add(int64(n))
}

// Snapshot is an immutable copy of the counter values.
type Snapshot struct {
	InternalReads int64 // node fetches above the leaf level
	LeafReads     int64 // leaf node fetches
	DistanceComps int64 // geometric predicate evaluations
	Results       int64 // objects returned
	BufferHits    int64 // page requests served from buffer
	PageWrites    int64 // page writes
	PrunedNodes   int64 // index nodes skipped by a pruning rule
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		InternalReads: c.internalReads.Load(),
		LeafReads:     c.leafReads.Load(),
		DistanceComps: c.distanceComps.Load(),
		Results:       c.results.Load(),
		BufferHits:    c.bufferHits.Load(),
		PageWrites:    c.pageWrites.Load(),
		PrunedNodes:   c.prunedNodes.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.internalReads.Store(0)
	c.leafReads.Store(0)
	c.distanceComps.Store(0)
	c.results.Store(0)
	c.bufferHits.Store(0)
	c.pageWrites.Store(0)
	c.prunedNodes.Store(0)
}

// Reads returns the total number of disk accesses (leaf + internal).
func (s Snapshot) Reads() int64 { return s.InternalReads + s.LeafReads }

// HitRatio returns the fraction of page requests served by the buffer
// pool: hits / (hits + reads). Zero when no pages were requested.
func (s Snapshot) HitRatio() float64 {
	total := s.BufferHits + s.Reads()
	if total == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(total)
}

// Sub returns the per-operation deltas between two snapshots taken before
// and after an operation (s is "after", o is "before").
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		InternalReads: s.InternalReads - o.InternalReads,
		LeafReads:     s.LeafReads - o.LeafReads,
		DistanceComps: s.DistanceComps - o.DistanceComps,
		Results:       s.Results - o.Results,
		BufferHits:    s.BufferHits - o.BufferHits,
		PageWrites:    s.PageWrites - o.PageWrites,
		PrunedNodes:   s.PrunedNodes - o.PrunedNodes,
	}
}

// Add returns the component-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		InternalReads: s.InternalReads + o.InternalReads,
		LeafReads:     s.LeafReads + o.LeafReads,
		DistanceComps: s.DistanceComps + o.DistanceComps,
		Results:       s.Results + o.Results,
		BufferHits:    s.BufferHits + o.BufferHits,
		PageWrites:    s.PageWrites + o.PageWrites,
		PrunedNodes:   s.PrunedNodes + o.PrunedNodes,
	}
}

// String renders a compact human-readable summary, including the index
// maintenance cost (page writes) and the buffer-pool hit ratio.
func (s Snapshot) String() string {
	return fmt.Sprintf("reads=%d (leaf=%d internal=%d) dist=%d pruned=%d results=%d writes=%d hits=%d (ratio=%.2f)",
		s.Reads(), s.LeafReads, s.InternalReads, s.DistanceComps, s.PrunedNodes,
		s.Results, s.PageWrites, s.BufferHits, s.HitRatio())
}

// Mean divides every component by n (for averaging over n queries);
// values are truncated toward zero. n must be positive.
type Mean struct {
	InternalReads float64
	LeafReads     float64
	DistanceComps float64
	Results       float64
	BufferHits    float64
	PageWrites    float64
	PrunedNodes   float64
}

// MeanOver returns the per-query averages of a snapshot over n queries.
func (s Snapshot) MeanOver(n int) Mean {
	if n <= 0 {
		return Mean{}
	}
	f := float64(n)
	return Mean{
		InternalReads: float64(s.InternalReads) / f,
		LeafReads:     float64(s.LeafReads) / f,
		DistanceComps: float64(s.DistanceComps) / f,
		Results:       float64(s.Results) / f,
		BufferHits:    float64(s.BufferHits) / f,
		PageWrites:    float64(s.PageWrites) / f,
		PrunedNodes:   float64(s.PrunedNodes) / f,
	}
}

// String renders the per-query means, mirroring Snapshot.String.
func (m Mean) String() string {
	return fmt.Sprintf("reads=%.2f (leaf=%.2f internal=%.2f) dist=%.2f pruned=%.2f results=%.2f writes=%.2f hits=%.2f",
		m.Reads(), m.LeafReads, m.InternalReads, m.DistanceComps, m.PrunedNodes,
		m.Results, m.PageWrites, m.BufferHits)
}

// Reads returns the mean total disk accesses per query.
func (m Mean) Reads() float64 { return m.InternalReads + m.LeafReads }
