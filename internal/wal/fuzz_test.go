package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeWALRecord throws arbitrary bytes at the record decoder. The
// decoder guards the replay path: a crash can leave literally anything
// at the log's tail, so decoding must never panic, never over-read, and
// must reject every mutation of a valid record — and re-encoding an
// accepted record must round-trip exactly.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(1, 1, nil))
	f.Add(EncodeRecord(42, 7, []byte("the payload")))
	f.Add(EncodeRecord(^uint64(0), ^uint64(0), bytes.Repeat([]byte{0xAA}, 64)))
	// Implausible length field.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	// Valid header, truncated payload.
	f.Add(EncodeRecord(3, 1, []byte("truncated"))[:recHeaderLen+4])

	f.Fuzz(func(t *testing.T, data []byte) {
		lsn, epoch, payload, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderLen+recTrailerLen || n > len(data) {
			t.Fatalf("consumed %d bytes of a %d-byte buffer", n, len(data))
		}
		if len(payload) != n-recHeaderLen-recTrailerLen {
			t.Fatalf("payload length %d inconsistent with consumed %d", len(payload), n)
		}
		// An accepted record must re-encode byte-identically.
		if again := EncodeRecord(lsn, epoch, payload); !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data[:n])
		}
	})
}
