package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// immediate disables the group-commit delay so tests don't sleep.
var immediate = Options{GroupCommitWindow: -1}

func create(t *testing.T) *Log {
	t.Helper()
	l, err := Create(filepath.Join(t.TempDir(), "test.wal"), immediate)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendSync(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	lsn, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	if err := l.SyncNow(lsn); err != nil {
		t.Fatalf("SyncNow(%d): %v", lsn, err)
	}
	return lsn
}

func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	if err := l.Replay(after, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l := create(t)
	want := map[uint64]string{}
	for i := 0; i < 10; i++ {
		payload := fmt.Sprintf("record-%d", i)
		want[appendSync(t, l, payload)] = payload
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for lsn, p := range want {
		if got[lsn] != p {
			t.Errorf("lsn %d: got %q, want %q", lsn, got[lsn], p)
		}
	}
	if got := collect(t, l, 5); len(got) != 5 {
		t.Errorf("Replay(after=5) returned %d records, want 5", len(got))
	}
}

func TestReopenAfterCleanClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, immediate)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appendSync(t, l, "alpha")
	appendSync(t, l, "beta")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rep, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if rep.Records != 2 || rep.TornTail || rep.LastLSN != 2 {
		t.Fatalf("scan report = %+v, want 2 records, no torn tail, last LSN 2", rep)
	}
	// LSNs keep ascending across the reopen.
	if lsn, err := l2.Append([]byte("gamma")); err != nil || lsn != 3 {
		t.Fatalf("Append after reopen = (%d, %v), want LSN 3", lsn, err)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	for _, cut := range []int64{1, 3, 10} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "test.wal")
			l, err := Create(path, immediate)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			appendSync(t, l, "committed")
			appendSync(t, l, "torn-away")
			if err := l.Crash(); err != nil {
				t.Fatalf("Crash: %v", err)
			}
			// Tear the tail: chop bytes off the last record.
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-cut); err != nil {
				t.Fatal(err)
			}

			l2, rep, err := Open(path, immediate)
			if err != nil {
				t.Fatalf("Open after tear: %v", err)
			}
			defer l2.Close()
			if !rep.TornTail || rep.Records != 1 || rep.LastLSN != 1 {
				t.Fatalf("scan report = %+v, want torn tail with 1 surviving record", rep)
			}
			got := collect(t, l2, 0)
			if len(got) != 1 || got[1] != "committed" {
				t.Fatalf("replay after tear = %v, want only the committed record", got)
			}
			// The log stays appendable and the new record lands cleanly.
			if lsn, err := l2.Append([]byte("after-tear")); err != nil || lsn != 2 {
				t.Fatalf("Append after tear = (%d, %v), want LSN 2", lsn, err)
			}
		})
	}
}

func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, immediate)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appendSync(t, l, "first")
	appendSync(t, l, "second")
	appendSync(t, l, "third")
	l.Crash()

	// Flip a byte inside the second record's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	secondPayload := recordsStart + (recHeaderLen + 5 + recTrailerLen) + recHeaderLen
	raw[secondPayload] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if !rep.TornTail || rep.Records != 1 {
		t.Fatalf("scan report = %+v, want stop after first record", rep)
	}
	got := collect(t, l2, 0)
	if len(got) != 1 || got[1] != "first" {
		t.Fatalf("replay = %v, want only the first record", got)
	}
}

func TestCheckpointTruncatesAndSkipsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, immediate)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appendSync(t, l, "one")
	last := appendSync(t, l, "two")
	if err := l.Checkpoint(last); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("replay after checkpoint = %v, want empty", got)
	}
	// Post-checkpoint records live in the new epoch and keep their LSNs.
	if lsn := appendSync(t, l, "three"); lsn != 3 {
		t.Fatalf("post-checkpoint LSN = %d, want 3", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if rep.Checkpoint != 2 || rep.Records != 1 || rep.LastLSN != 3 {
		t.Fatalf("scan report = %+v, want checkpoint 2 and one live record", rep)
	}
	got := collect(t, l2, rep.Checkpoint)
	if len(got) != 1 || got[3] != "three" {
		t.Fatalf("replay = %v, want only the post-checkpoint record", got)
	}
}

func TestTornCheckpointHeaderFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, immediate)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appendSync(t, l, "one")
	if err := l.Checkpoint(1); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	seqAfter := l.seq
	l.Crash()

	// Tear the slot the checkpoint just committed (seq%2); the other
	// slot must win and the log must still open.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slot := int(seqAfter % 2)
	raw[slot*headerSlotSize+8] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, _, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("Open with torn header slot: %v", err)
	}
	l2.Close()

	// Both slots torn → the file is unrecoverable and says so.
	raw[(1-slot)*headerSlotSize+8] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, immediate); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Open with both slots torn = %v, want ErrCorruptRecord", err)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	l, err := Create(filepath.Join(t.TempDir(), "test.wal"), Options{GroupCommitWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]byte(fmt.Sprintf("w%d", i)))
			if err == nil {
				err = l.Sync(lsn)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != writers {
		t.Fatalf("appends = %d, want %d", st.Appends, writers)
	}
	// The window must have coalesced 16 writers into far fewer fsyncs.
	if st.Fsyncs >= writers {
		t.Fatalf("fsyncs = %d for %d writers; group commit did not coalesce", st.Fsyncs, writers)
	}
	if l.DurableLSN() != uint64(writers) {
		t.Fatalf("durable LSN = %d, want %d", l.DurableLSN(), writers)
	}
}

func TestSyncAfterCrashFails(t *testing.T) {
	l := create(t)
	lsn, err := l.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := l.SyncNow(lsn); !errors.Is(err, ErrClosed) {
		t.Fatalf("SyncNow after Crash = %v, want ErrClosed", err)
	}
	if _, err := l.Append([]byte("more")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Crash = %v, want ErrClosed", err)
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	payload := []byte("the payload")
	rec := EncodeRecord(42, 7, payload)
	lsn, epoch, got, n, err := DecodeRecord(rec)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if lsn != 42 || epoch != 7 || !bytes.Equal(got, payload) || n != len(rec) {
		t.Fatalf("DecodeRecord = (%d, %d, %q, %d), want (42, 7, %q, %d)", lsn, epoch, got, n, payload, len(rec))
	}
	// Every single-byte flip must be caught.
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x01
		if _, _, _, _, err := DecodeRecord(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	if _, _, _, _, err := DecodeRecord(rec[:5]); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("short buffer error = %v, want ErrCorruptRecord", err)
	}
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	l := create(t)
	if _, err := l.Append(make([]byte, MaxRecordLen+1)); err == nil {
		t.Fatal("oversized Append succeeded, want error")
	}
}

func TestOpenEmptyPathCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.wal")
	l, rep, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("Open on missing path: %v", err)
	}
	defer l.Close()
	if rep.Records != 0 || rep.TornTail {
		t.Fatalf("fresh scan report = %+v, want empty", rep)
	}
	if lsn, err := l.Append([]byte("x")); err != nil || lsn != 1 {
		t.Fatalf("first Append = (%d, %v), want LSN 1", lsn, err)
	}
}

// TestOpenTornCreate: a crash during Create can leave the file shorter
// than the header region — e.g. only slot 0's 512 bytes persisted. Open
// must reopen it as an empty log (or reject garbage cleanly), never
// panic on the negative record-region size.
func TestOpenTornCreate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn-create.wal")
	l, err := Create(path, immediate)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, headerSlotSize); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("Open after torn create: %v", err)
	}
	if !rep.TornTail || rep.Records != 0 || rep.LastLSN != 0 {
		t.Fatalf("torn-create scan report = %+v, want torn and empty", rep)
	}
	// The recovered log is fully usable: append, sync, reopen, replay.
	if _, err := l2.Append([]byte("alive")); err != nil {
		t.Fatalf("Append after torn create: %v", err)
	}
	appendSync(t, l2, "alive2")
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rep3, err := Open(path, immediate)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l3.Close()
	if rep3.Records != 2 {
		t.Fatalf("reopen scanned %d records, want 2 (%+v)", rep3.Records, rep3)
	}
	got := collect(t, l3, 0)
	if got[1] != "alive" || got[2] != "alive2" {
		t.Fatalf("replay after torn-create recovery = %v", got)
	}

	// A stub too short to hold any valid header slot errors, not panics.
	stub := filepath.Join(dir, "stub.wal")
	if err := os.WriteFile(stub, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(stub, immediate); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Open on headerless stub: %v, want ErrCorruptRecord", err)
	}
}

// TestOpenFsyncsBeforePromisingDurable: after Open, Sync on a replayed
// LSN must return success having actually been covered by an fsync —
// the scan issues one — rather than trusting bytes that may only have
// reached the OS cache before the crash.
func TestOpenFsyncsBeforePromisingDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durable.wal")
	l, err := Create(path, immediate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("unsynced")); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil { // close WITHOUT fsync
		t.Fatal(err)
	}
	l2, rep, err := Open(path, immediate)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep.Records != 1 {
		t.Fatalf("scanned %d records, want 1", rep.Records)
	}
	if got := l2.DurableLSN(); got != rep.LastLSN {
		t.Fatalf("DurableLSN = %d, want %d", got, rep.LastLSN)
	}
	// The promise must be backed by a real fsync during Open.
	if err := l2.Sync(rep.LastLSN); err != nil {
		t.Fatalf("Sync on replayed LSN: %v", err)
	}
}
