// Package wal implements the write-ahead log behind dynq's durable
// high-rate ingest path. The log is an append-only file of checksummed,
// epoch-stamped records (the same CRC32C-trailer idiom as the pager's v2
// page format) fronted by a dual-slot header committed atomically, so a
// crash at any byte leaves either the previous committed header or the
// new one — never a half-written one — and a torn record tail is
// detected and discarded on open instead of being replayed as garbage.
//
// Layout:
//
//	offset 0     header slot 0 (512 bytes)
//	offset 512   header slot 1 (512 bytes)
//	offset 1024  records, densely packed
//
// Header slot:
//
//	offset 0    8 bytes  magic "DYNQWAL1"
//	offset 8    8 bytes  commit sequence (also the record epoch)
//	offset 16   8 bytes  checkpoint LSN (records <= it are applied to the base file)
//	offset 24   8 bytes  next LSN to assign (monotonic across truncations)
//	offset 508  4 bytes  CRC32C over bytes [0, 508)
//
// Record:
//
//	offset 0    4 bytes  payload length n
//	offset 4    8 bytes  LSN
//	offset 12   8 bytes  epoch (header sequence at append time)
//	offset 20   n bytes  payload
//	offset 20+n 4 bytes  CRC32C over bytes [0, 20+n)
//
// Writers append under the log's mutex (cheap: one buffered pwrite) and
// then wait for durability according to their durability level. The wait
// is a group commit: the first waiter becomes the round's leader, sleeps
// the group-commit window so concurrent writers can pile in, and issues
// ONE fsync covering every record appended by then; followers block on a
// condition variable until the leader's round covers their LSN. A failed
// fsync is sticky — the log refuses further durability promises until
// reopened, and the database above degrades to read-only.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// Magic identifies a dynq WAL file (format version 1).
	Magic = "DYNQWAL1"

	headerSlotSize = 512
	recordsStart   = 2 * headerSlotSize

	recHeaderLen  = 4 + 8 + 8 // length, LSN, epoch
	recTrailerLen = 4         // CRC32C

	// MaxRecordLen bounds a single record's payload; anything larger in
	// a length field is corruption, not data.
	MaxRecordLen = 64 << 20

	// DefaultGroupCommitWindow is how long a group-commit leader waits
	// for concurrent writers before issuing the round's fsync.
	DefaultGroupCommitWindow = 2 * time.Millisecond
)

// castagnoli is the CRC32C table, matching the pager's page trailers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// ErrCorruptRecord is wrapped by every record decoding failure: a bad
// length, a checksum mismatch, or a truncated tail.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// Options configure a log.
type Options struct {
	// GroupCommitWindow is how long a group-commit leader waits for
	// concurrent writers before fsyncing (0 = the 2ms default; negative
	// = fsync immediately, no coalescing delay).
	GroupCommitWindow time.Duration

	// Fault, when non-nil, is consulted before every physical
	// write-class operation ("append", "fsync", "checkpoint"); a non-nil
	// return is injected as that operation's failure. The log file sits
	// beside the page store and bypasses pager.FaultStore, so disk-full
	// and write-error chaos testing hooks in here instead.
	Fault func(op string) error
}

func (o Options) window() time.Duration {
	switch {
	case o.GroupCommitWindow < 0:
		return 0
	case o.GroupCommitWindow == 0:
		return DefaultGroupCommitWindow
	}
	return o.GroupCommitWindow
}

// ScanReport describes what Open found in an existing log.
type ScanReport struct {
	// Records is the number of valid records scanned after the
	// checkpoint.
	Records int
	// Checkpoint is the committed checkpoint LSN.
	Checkpoint uint64
	// LastLSN is the highest valid record LSN found (0 when empty).
	LastLSN uint64
	// TornTail is true when the scan stopped at an invalid record before
	// the end of the file — the signature of a crash mid-append or
	// mid-group-commit. The torn bytes are discarded.
	TornTail bool
	// TornBytes is the number of tail bytes discarded.
	TornBytes int64
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Appends       int64 // records appended
	AppendedBytes int64 // bytes appended (records, not headers)
	Fsyncs        int64 // fsync syscalls issued by group-commit rounds
	Coalesced     int64 // durability waits satisfied by another writer's fsync
	Checkpoints   int64 // checkpoint truncations
}

// Log is a write-ahead log. Append and Checkpoint serialize on an
// internal mutex; durability waits (Sync, SyncNow) run outside it so an
// fsync never blocks appends by other writers.
type Log struct {
	path   string
	window time.Duration

	mu         sync.Mutex
	f          *os.File
	closed     bool
	seq        uint64 // committed header sequence == epoch of new records
	checkpoint uint64 // highest LSN checkpointed into the base file
	nextLSN    uint64 // LSN the next Append will assign
	tail       int64  // file offset of the next record

	appended atomic.Uint64 // highest LSN appended

	// Group-commit state. gcMu is strictly ordered AFTER mu (fsync takes
	// mu briefly to read the file handle, never the reverse).
	gcMu    sync.Mutex
	gcCond  *sync.Cond
	syncing bool   // a leader's fsync round is in flight
	durable uint64 // highest LSN known fsynced (or checkpointed)
	syncErr error  // sticky fsync failure; cleared only by RetrySync

	stAppends, stBytes, stFsyncs, stCoalesced, stCheckpoints atomic.Int64

	// Instrumentation (metrics.go). nowFn is the injectable time source
	// behind duration measurements; set via WithClock before use.
	nowFn func() time.Time
	met   walMetrics

	fault func(op string) error // Options.Fault
}

// Create creates (or truncates) a log at path with a fresh header.
func Create(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := newLog(path, f, opts)
	l.seq = 1
	l.checkpoint = 0
	l.nextLSN = 1
	l.tail = recordsStart
	// Both slots get the initial header so the file tolerates a torn
	// commit from the very first checkpoint on.
	if err := l.writeHeaderSlot(0); err != nil {
		f.Close()
		return nil, err
	}
	if err := l.writeHeaderSlot(1); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Open opens an existing log (creating a fresh one when path does not
// exist or is empty), picks the newest valid header slot, and scans the
// record region to find the durable tail: the scan stops at the first
// record with a bad length, a stale epoch, a non-monotonic LSN, or a
// checksum mismatch, and truncates the torn bytes away.
func Open(path string, opts Options) (*Log, *ScanReport, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if size == 0 {
		f.Close()
		l, err := Create(path, opts)
		if err != nil {
			return nil, nil, err
		}
		return l, &ScanReport{}, nil
	}
	l := newLog(path, f, opts)
	if err := l.readHeader(); err != nil {
		f.Close()
		return nil, nil, err
	}
	rep := &ScanReport{Checkpoint: l.checkpoint}
	if err := l.scanTail(size, rep); err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, rep, nil
}

func newLog(path string, f *os.File, opts Options) *Log {
	l := &Log{path: path, f: f, window: opts.window(), nowFn: time.Now, fault: opts.Fault}
	l.gcCond = sync.NewCond(&l.gcMu)
	l.met = newWALMetrics()
	return l
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Window returns the effective group-commit window.
func (l *Log) Window() time.Duration { return l.window }

func (l *Log) encodeHeader() []byte {
	buf := make([]byte, headerSlotSize)
	copy(buf, Magic)
	binary.LittleEndian.PutUint64(buf[8:], l.seq)
	binary.LittleEndian.PutUint64(buf[16:], l.checkpoint)
	binary.LittleEndian.PutUint64(buf[24:], l.nextLSN)
	crc := crc32.Checksum(buf[:headerSlotSize-4], castagnoli)
	binary.LittleEndian.PutUint32(buf[headerSlotSize-4:], crc)
	return buf
}

func (l *Log) writeHeaderSlot(slot int) error {
	_, err := l.f.WriteAt(l.encodeHeader(), int64(slot)*headerSlotSize)
	return err
}

// decodeHeaderSlot validates one slot, returning ok=false for an
// invalid one (wrong magic or checksum).
func decodeHeaderSlot(buf []byte) (seq, checkpoint, next uint64, ok bool) {
	if len(buf) < headerSlotSize || string(buf[:8]) != Magic {
		return 0, 0, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[headerSlotSize-4:])
	if crc32.Checksum(buf[:headerSlotSize-4], castagnoli) != want {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[8:]),
		binary.LittleEndian.Uint64(buf[16:]),
		binary.LittleEndian.Uint64(buf[24:]), true
}

// readHeader picks the valid slot with the highest sequence — the last
// complete commit — mirroring the pager's dual-slot recovery.
func (l *Log) readHeader() error {
	buf := make([]byte, 2*headerSlotSize)
	if _, err := l.f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	best := false
	for slot := 0; slot < 2; slot++ {
		seq, cp, next, ok := decodeHeaderSlot(buf[slot*headerSlotSize : (slot+1)*headerSlotSize])
		if ok && (!best || seq > l.seq) {
			l.seq, l.checkpoint, l.nextLSN = seq, cp, next
			best = true
		}
	}
	if !best {
		return fmt.Errorf("%w: no valid header slot", ErrCorruptRecord)
	}
	return nil
}

// scanTail walks the record region validating every record, establishes
// the append tail after the last valid one, and physically truncates any
// torn bytes beyond it.
func (l *Log) scanTail(size int64, rep *ScanReport) error {
	if size < recordsStart {
		// A crash during Create can persist one header slot and nothing
		// else, leaving the file shorter than the header region. readHeader
		// already validated a slot, so treat it as a torn create: no
		// records, and the file is restored to the record-region start so
		// appends land where the header says they do.
		rep.TornTail = true
		if err := l.f.Truncate(recordsStart); err != nil {
			return err
		}
		size = recordsStart
	}
	data := make([]byte, size-recordsStart)
	if len(data) > 0 {
		if _, err := l.f.ReadAt(data, recordsStart); err != nil {
			return err
		}
	}
	off := 0
	last := l.checkpoint
	for off < len(data) {
		lsn, epoch, _, n, err := DecodeRecord(data[off:])
		if err != nil || epoch != l.seq || lsn <= last {
			rep.TornTail = true
			rep.TornBytes = int64(len(data) - off)
			break
		}
		last = lsn
		off += n
		rep.Records++
	}
	rep.LastLSN = last
	l.tail = recordsStart + int64(off)
	l.appended.Store(last)
	if rep.TornTail {
		if err := l.f.Truncate(l.tail); err != nil {
			return err
		}
	}
	// The scan proves the surviving records are readable, not that any
	// pre-crash fsync ever covered them — they may have been served from
	// the OS cache. One fsync here (also covering the tail truncate) makes
	// the durable promise true before any Sync(lsn) for a replayed record
	// returns without issuing its own.
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.durable = last
	if last >= l.nextLSN {
		l.nextLSN = last + 1
	}
	return nil
}

// EncodeRecord frames one payload as a WAL record.
func EncodeRecord(lsn, epoch uint64, payload []byte) []byte {
	buf := make([]byte, recHeaderLen+len(payload)+recTrailerLen)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:], lsn)
	binary.LittleEndian.PutUint64(buf[12:], epoch)
	copy(buf[recHeaderLen:], payload)
	crc := crc32.Checksum(buf[:recHeaderLen+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(buf[recHeaderLen+len(payload):], crc)
	return buf
}

// DecodeRecord parses and validates the record at the start of b,
// returning its LSN, epoch, payload (aliasing b), and total encoded
// length. Every failure wraps ErrCorruptRecord; during replay a failure
// marks the torn tail, not a fatal state.
func DecodeRecord(b []byte) (lsn, epoch uint64, payload []byte, n int, err error) {
	if len(b) < recHeaderLen+recTrailerLen {
		return 0, 0, nil, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorruptRecord, len(b))
	}
	plen := binary.LittleEndian.Uint32(b[0:])
	if plen > MaxRecordLen {
		return 0, 0, nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorruptRecord, plen)
	}
	n = recHeaderLen + int(plen) + recTrailerLen
	if len(b) < n {
		return 0, 0, nil, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrCorruptRecord, len(b), n)
	}
	want := binary.LittleEndian.Uint32(b[n-recTrailerLen:])
	if crc32.Checksum(b[:n-recTrailerLen], castagnoli) != want {
		return 0, 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	lsn = binary.LittleEndian.Uint64(b[4:])
	epoch = binary.LittleEndian.Uint64(b[12:])
	return lsn, epoch, b[recHeaderLen : n-recTrailerLen], n, nil
}

// Append assigns the next LSN, stamps the record with the current epoch,
// and writes it at the tail WITHOUT waiting for durability; call Sync or
// SyncNow with the returned LSN to make it durable.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordLen {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record cap", len(payload), MaxRecordLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	rec := EncodeRecord(lsn, l.seq, payload)
	if l.fault != nil {
		if err := l.fault("append"); err != nil {
			return 0, fmt.Errorf("wal: append: %w", err)
		}
	}
	if _, err := l.f.WriteAt(rec, l.tail); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextLSN++
	l.tail += int64(len(rec))
	l.appended.Store(lsn)
	l.stAppends.Add(1)
	l.stBytes.Add(int64(len(rec)))
	l.met.appendBytes.Observe(float64(len(rec)))
	return lsn, nil
}

// Sync blocks until every record up to lsn is durable, coalescing with
// concurrent waiters: the round's leader waits the group-commit window,
// then one fsync covers the whole pile.
func (l *Log) Sync(lsn uint64) error { return l.waitDurable(lsn, l.window) }

// SyncNow is Sync without the coalescing delay — the round leader fsyncs
// immediately (DurabilitySync semantics).
func (l *Log) SyncNow(lsn uint64) error { return l.waitDurable(lsn, 0) }

func (l *Log) waitDurable(lsn uint64, window time.Duration) error {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.durable >= lsn {
			return nil
		}
		if l.syncing {
			// Another writer's round is in flight; ride it.
			l.stCoalesced.Add(1)
			l.gcCond.Wait()
			continue
		}
		// Become this round's leader.
		l.syncing = true
		l.gcMu.Unlock()
		if window > 0 {
			time.Sleep(window)
		}
		high := l.appended.Load()
		start := l.nowFn()
		err := l.fsync()
		elapsed := l.nowFn().Sub(start)
		l.gcMu.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = err
		} else {
			l.met.fsync.ObserveDuration(elapsed)
			if high > l.durable {
				// Records newly covered by this round's fsync: the batch
				// the group commit amortized into one syscall.
				l.met.batch.Observe(float64(high - l.durable))
				l.durable = high
			}
		}
		l.gcCond.Broadcast()
	}
}

// RetrySync re-attempts the fsync behind a sticky failure. On success
// the sticky error is cleared and everything appended so far is durable,
// re-arming the log for new durability promises — the recovery half of
// the circuit breaker (the maintenance probe calls this once the
// underlying storage looks healthy again). A closed log stays closed.
func (l *Log) RetrySync() error {
	l.gcMu.Lock()
	for l.syncing {
		l.gcCond.Wait()
	}
	if errors.Is(l.syncErr, ErrClosed) {
		l.gcMu.Unlock()
		return ErrClosed
	}
	l.syncing = true
	l.gcMu.Unlock()

	high := l.appended.Load()
	start := l.nowFn()
	err := l.fsync()
	elapsed := l.nowFn().Sub(start)

	l.gcMu.Lock()
	l.syncing = false
	if err != nil {
		l.syncErr = err
	} else {
		l.syncErr = nil
		l.met.fsync.ObserveDuration(elapsed)
		if high > l.durable {
			l.met.batch.Observe(float64(high - l.durable))
			l.durable = high
		}
	}
	l.gcCond.Broadcast()
	l.gcMu.Unlock()
	return err
}

// SyncErr returns the sticky durability failure, if any.
func (l *Log) SyncErr() error {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.syncErr
}

func (l *Log) fsync() error {
	l.mu.Lock()
	f, closed := l.f, l.closed
	l.mu.Unlock()
	if closed || f == nil {
		return ErrClosed
	}
	l.stFsyncs.Add(1)
	if l.fault != nil {
		if err := l.fault("fsync"); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Checkpoint records that every update up to lsn is durably applied to
// the base file: the record region is truncated away and a new header —
// next epoch, new checkpoint — is committed to the alternate slot. The
// caller must guarantee no concurrent Append (dynq holds the database
// writer lock across its page commit and this call).
func (l *Log) Checkpoint(lsn uint64) error {
	start := l.nowFn()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.fault != nil {
		if err := l.fault("checkpoint"); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
	}
	if err := l.f.Truncate(recordsStart); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint truncate: %w", err)
	}
	l.seq++
	if lsn > l.checkpoint {
		l.checkpoint = lsn
	}
	l.tail = recordsStart
	slot := int(l.seq % 2)
	if err := l.writeHeaderSlot(slot); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint commit: %w", err)
	}
	l.stCheckpoints.Add(1)
	l.met.checkpoint.ObserveDuration(l.nowFn().Sub(start))
	l.mu.Unlock()

	// A checkpointed LSN is durable in the base file — stronger than
	// WAL-durable. Release any writer still waiting on it.
	l.gcMu.Lock()
	if l.checkpoint > l.durable {
		l.durable = l.checkpoint
	}
	l.gcCond.Broadcast()
	l.gcMu.Unlock()
	return nil
}

// Replay reads the record region from disk and hands every valid record
// with LSN > after to fn, in LSN order, stopping cleanly at the torn
// tail (already truncated by Open). An error from fn aborts the replay.
func (l *Log) Replay(after uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	size := l.tail - recordsStart
	data := make([]byte, size)
	var rerr error
	if size > 0 {
		_, rerr = l.f.ReadAt(data, recordsStart)
	}
	seq := l.seq
	l.mu.Unlock()
	if rerr != nil {
		return fmt.Errorf("wal: replay read: %w", rerr)
	}
	off := 0
	for off < len(data) {
		lsn, epoch, payload, n, err := DecodeRecord(data[off:])
		if err != nil || epoch != seq {
			// Open truncated the torn tail, so this is new corruption
			// (or a record torn by a concurrent crash test); stop.
			return nil
		}
		if lsn > after {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
		off += n
	}
	return nil
}

// LastLSN returns the highest LSN appended (0 when none since the log
// was created).
func (l *Log) LastLSN() uint64 { return l.appended.Load() }

// CheckpointLSN returns the committed checkpoint LSN.
func (l *Log) CheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// DurableLSN returns the highest LSN known durable.
func (l *Log) DurableLSN() uint64 {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.durable
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:       l.stAppends.Load(),
		AppendedBytes: l.stBytes.Load(),
		Fsyncs:        l.stFsyncs.Load(),
		Coalesced:     l.stCoalesced.Load(),
		Checkpoints:   l.stCheckpoints.Load(),
	}
}

// Close fsyncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.wakeWaiters()
	return err
}

// Crash closes the log WITHOUT syncing, so unfsynced appends are at the
// mercy of the OS — the crash-simulation hook used by the fault soak
// (mirroring FileStore.Crash).
func (l *Log) Crash() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Close()
	l.wakeWaiters()
	return err
}

// wakeWaiters releases durability waiters after close; their next fsync
// attempt observes the closed log. Called with mu held.
func (l *Log) wakeWaiters() {
	l.gcMu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.gcCond.Broadcast()
	l.gcMu.Unlock()
}
