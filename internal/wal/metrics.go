package wal

import (
	"time"

	"dynq/internal/obs"
)

// batchBuckets bound the records-per-fsync-round distribution: powers of
// two from a lone writer to a deeply piled-up group commit.
func batchBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
}

// appendByteBuckets bound the encoded-record-size distribution, from a
// single-update record to the 64 MiB payload cap.
func appendByteBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
}

// walMetrics is the log's instrumentation: windowed histograms over the
// group-commit machinery, fed from the append and fsync paths and
// snapshotted into the Telemetry.WAL section.
type walMetrics struct {
	fsync       *obs.WindowedHistogram // fsync latency, seconds
	batch       *obs.WindowedHistogram // records made durable per fsync round
	appendBytes *obs.WindowedHistogram // encoded record bytes per append
	checkpoint  *obs.WindowedHistogram // checkpoint duration, seconds
}

func newWALMetrics() walMetrics {
	windows, interval := obs.DefWindows(), obs.DefWindowInterval
	max := windows[len(windows)-1]
	return walMetrics{
		fsync:       obs.NewWindowedHistogram(obs.DefLatencyBuckets(), interval, max),
		batch:       obs.NewWindowedHistogram(batchBuckets(), interval, max),
		appendBytes: obs.NewWindowedHistogram(appendByteBuckets(), interval, max),
		checkpoint:  obs.NewWindowedHistogram(obs.DefLatencyBuckets(), interval, max),
	}
}

// WithClock replaces the log's time source — wall-clock stage timing and
// the rolling histogram windows — for tests. Call before any append or
// sync; not safe concurrently with log use.
func (l *Log) WithClock(now func() time.Time) *Log {
	l.nowFn = now
	l.met.fsync.WithClock(now)
	l.met.batch.WithClock(now)
	l.met.appendBytes.WithClock(now)
	l.met.checkpoint.WithClock(now)
	return l
}

// Size returns the log's current file size in bytes, headers included.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// LiveBytes returns the encoded bytes of records appended since the last
// checkpoint (the region a checkpoint would truncate away).
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail - recordsStart
}

// Epoch returns the committed header sequence, which stamps new records.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// CheckpointLag returns the number of records appended but not yet
// checkpointed into the base file. LSNs are dense, so the LSN delta is
// the live record count.
func (l *Log) CheckpointLag() uint64 {
	l.mu.Lock()
	cp := l.checkpoint
	l.mu.Unlock()
	if last := l.appended.Load(); last > cp {
		return last - cp
	}
	return 0
}

// coalesceRatio is the fraction of durability waits satisfied by another
// writer's fsync round — the group-commit win.
func coalesceRatio(st Stats) float64 {
	total := st.Coalesced + st.Fsyncs
	if total == 0 {
		return 0
	}
	return float64(st.Coalesced) / float64(total)
}

// Telemetry snapshots the log's instrumentation into the wire/HTTP
// telemetry section, with rolling histogram windows over the given
// spans (shortest first).
func (l *Log) Telemetry(windows []time.Duration) obs.WALTelemetry {
	st := l.Stats()
	l.mu.Lock()
	tail, cp := l.tail, l.checkpoint
	l.mu.Unlock()
	last := l.appended.Load()
	t := obs.WALTelemetry{
		Path:          l.path,
		Appends:       st.Appends,
		AppendedBytes: st.AppendedBytes,
		Fsyncs:        st.Fsyncs,
		Coalesced:     st.Coalesced,
		CoalesceRatio: coalesceRatio(st),
		Checkpoints:   st.Checkpoints,

		LastLSN:       last,
		DurableLSN:    l.DurableLSN(),
		CheckpointLSN: cp,
		LogBytes:      tail,
		LiveBytes:     tail - recordsStart,

		FsyncLatency:       obs.SummarizeWindowed(l.met.fsync, windows),
		BatchSize:          obs.SummarizeWindowed(l.met.batch, windows),
		AppendBytes:        obs.SummarizeWindowed(l.met.appendBytes, windows),
		CheckpointDuration: obs.SummarizeWindowed(l.met.checkpoint, windows),
	}
	if last > cp {
		t.CheckpointLag = last - cp
	}
	return t
}

// RegisterMetrics exposes the log's instrumentation in a registry:
// cumulative histograms, counter totals, and live gauges, plus rolling
// fsync-latency quantiles matching the netq per-op window gauges.
func (l *Log) RegisterMetrics(reg *obs.Registry) {
	l.RegisterMetricsLabeled(reg)
}

// RegisterMetricsLabeled is RegisterMetrics with extra labels stamped on
// every series — a sharded database registers each shard's log with a
// {shard="i"} label, so the dynq_wal_* families carry one series per
// log instead of colliding on the same name.
func (l *Log) RegisterMetricsLabeled(reg *obs.Registry, labels ...obs.Label) {
	reg.SetHelp("dynq_wal_fsync_seconds", "Group-commit fsync latency in seconds.")
	reg.SetHelp("dynq_wal_batch_records", "Records made durable per group-commit fsync round.")
	reg.SetHelp("dynq_wal_append_bytes", "Encoded record bytes per WAL append.")
	reg.SetHelp("dynq_wal_checkpoint_seconds", "WAL checkpoint (truncate + header commit) duration in seconds.")
	reg.AttachHistogram("dynq_wal_fsync_seconds", l.met.fsync.Cumulative(), labels...)
	reg.AttachHistogram("dynq_wal_batch_records", l.met.batch.Cumulative(), labels...)
	reg.AttachHistogram("dynq_wal_append_bytes", l.met.appendBytes.Cumulative(), labels...)
	reg.AttachHistogram("dynq_wal_checkpoint_seconds", l.met.checkpoint.Cumulative(), labels...)

	reg.SetHelp("dynq_wal_appends_total", "Records appended to the WAL.")
	reg.GaugeFunc("dynq_wal_appends_total", func() float64 { return float64(l.stAppends.Load()) }, labels...)
	reg.SetHelp("dynq_wal_appended_bytes_total", "Record bytes appended to the WAL (headers excluded).")
	reg.GaugeFunc("dynq_wal_appended_bytes_total", func() float64 { return float64(l.stBytes.Load()) }, labels...)
	reg.SetHelp("dynq_wal_fsyncs_total", "Fsync syscalls issued by group-commit rounds.")
	reg.GaugeFunc("dynq_wal_fsyncs_total", func() float64 { return float64(l.stFsyncs.Load()) }, labels...)
	reg.SetHelp("dynq_wal_coalesced_total", "Durability waits satisfied by another writer's fsync.")
	reg.GaugeFunc("dynq_wal_coalesced_total", func() float64 { return float64(l.stCoalesced.Load()) }, labels...)
	reg.SetHelp("dynq_wal_checkpoints_total", "WAL checkpoint truncations.")
	reg.GaugeFunc("dynq_wal_checkpoints_total", func() float64 { return float64(l.stCheckpoints.Load()) }, labels...)

	reg.SetHelp("dynq_wal_coalesce_ratio", "Fraction of durability waits satisfied by another writer's fsync.")
	reg.GaugeFunc("dynq_wal_coalesce_ratio", func() float64 { return coalesceRatio(l.Stats()) }, labels...)
	reg.SetHelp("dynq_wal_log_bytes", "Current WAL file size in bytes, headers included.")
	reg.GaugeFunc("dynq_wal_log_bytes", func() float64 { return float64(l.Size()) }, labels...)
	reg.SetHelp("dynq_wal_checkpoint_lag_records", "Records appended but not yet checkpointed into the base file.")
	reg.GaugeFunc("dynq_wal_checkpoint_lag_records", func() float64 { return float64(l.CheckpointLag()) }, labels...)

	reg.SetHelp("dynq_wal_fsync_window_seconds", "Rolling-window group-commit fsync latency quantiles.")
	for _, win := range obs.DefWindows() {
		win := win
		for _, q := range []struct {
			name string
			pick func(obs.WindowSnapshot) float64
		}{
			{"0.5", func(s obs.WindowSnapshot) float64 { return s.P50 }},
			{"0.95", func(s obs.WindowSnapshot) float64 { return s.P95 }},
			{"0.99", func(s obs.WindowSnapshot) float64 { return s.P99 }},
		} {
			q := q
			series := append(append([]obs.Label(nil), labels...),
				obs.L("window", win.String()), obs.L("quantile", q.name))
			reg.GaugeFunc("dynq_wal_fsync_window_seconds",
				func() float64 { return q.pick(l.met.fsync.Snapshot(win)) },
				series...)
		}
	}
}
