package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynq/internal/obs"
)

// fakeClock drives a Log's instrumentation deterministically.
type fakeClock struct{ cur time.Time }

func (c *fakeClock) now() time.Time          { return c.cur }
func (c *fakeClock) advance(d time.Duration) { c.cur = c.cur.Add(d) }

func createClocked(t *testing.T) (*Log, *fakeClock) {
	t.Helper()
	l, err := Create(filepath.Join(t.TempDir(), "metrics.wal"), immediate)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	clk := &fakeClock{cur: time.Unix(1_700_000_000, 0)}
	l.WithClock(clk.now)
	return l, clk
}

// TestTelemetryCountsAndBatchSize appends a pile of records, syncs once,
// and checks the cumulative telemetry: every counter, the batch-size
// distribution (one fsync covered the whole pile), and checkpoint lag.
func TestTelemetryCountsAndBatchSize(t *testing.T) {
	l, _ := createClocked(t)
	const k = 7
	var last uint64
	for i := 0; i < k; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		last = lsn
	}
	if err := l.SyncNow(last); err != nil {
		t.Fatalf("SyncNow: %v", err)
	}

	tel := l.Telemetry(obs.DefWindows())
	if tel.Appends != k {
		t.Errorf("Appends = %d, want %d", tel.Appends, k)
	}
	if tel.Fsyncs < 1 {
		t.Errorf("Fsyncs = %d, want >= 1", tel.Fsyncs)
	}
	if tel.LastLSN != last || tel.DurableLSN != last {
		t.Errorf("LSNs = (last %d, durable %d), want both %d", tel.LastLSN, tel.DurableLSN, last)
	}
	if tel.CheckpointLag != k {
		t.Errorf("CheckpointLag = %d, want %d", tel.CheckpointLag, k)
	}
	if tel.AppendBytes.Count != k {
		t.Errorf("AppendBytes.Count = %d, want %d", tel.AppendBytes.Count, k)
	}
	// One fsync durable-advanced the whole pile, so the batch-size
	// distribution's total mass equals the record count.
	if got := tel.BatchSize.Sum; got != k {
		t.Errorf("BatchSize.Sum = %v, want %d", got, k)
	}
	if tel.FsyncLatency.Count != tel.Fsyncs {
		t.Errorf("FsyncLatency.Count = %d, want %d fsyncs", tel.FsyncLatency.Count, tel.Fsyncs)
	}
	if tel.LiveBytes <= 0 || tel.LogBytes <= tel.LiveBytes {
		t.Errorf("LogBytes = %d, LiveBytes = %d: want header+records layout", tel.LogBytes, tel.LiveBytes)
	}
}

// TestFsyncWindowParityAndRotation checks the rolling-window side of the
// fsync histogram against its cumulative twin: while all observations
// sit inside the window, the two agree; once the fake clock jumps past
// the ring, the window drains and the cumulative totals persist.
func TestFsyncWindowParityAndRotation(t *testing.T) {
	l, clk := createClocked(t)
	const k = 5
	for i := 0; i < k; i++ {
		appendSync(t, l, fmt.Sprintf("w-%d", i))
		clk.advance(3 * time.Second) // spread across slots, all within 5m
	}

	tel := l.Telemetry([]time.Duration{5 * time.Minute})
	if len(tel.FsyncLatency.Windows) != 1 {
		t.Fatalf("want 1 window snapshot, got %d", len(tel.FsyncLatency.Windows))
	}
	win := tel.FsyncLatency.Windows[0]
	if win.Count != tel.FsyncLatency.Count {
		t.Errorf("5m window count = %d, cumulative = %d: want parity while everything is recent",
			win.Count, tel.FsyncLatency.Count)
	}
	if win.Sum != tel.FsyncLatency.Sum {
		t.Errorf("5m window sum = %v, cumulative = %v", win.Sum, tel.FsyncLatency.Sum)
	}

	// Idle past the whole ring: the window must empty, the cumulative
	// histogram must not.
	clk.advance(10 * time.Minute)
	tel = l.Telemetry([]time.Duration{5 * time.Minute})
	if got := tel.FsyncLatency.Windows[0].Count; got != 0 {
		t.Errorf("after 10m idle, 5m window count = %d, want 0", got)
	}
	if tel.FsyncLatency.Count < int64(k) {
		t.Errorf("cumulative fsync count = %d after rotation, want >= %d", tel.FsyncLatency.Count, k)
	}
}

// TestCheckpointTelemetry checks that Checkpoint lands in the duration
// histogram and resets the live-log gauges: lag back to zero, the file
// truncated to its header region.
func TestCheckpointTelemetry(t *testing.T) {
	l, clk := createClocked(t)
	var last uint64
	for i := 0; i < 4; i++ {
		last = appendSync(t, l, fmt.Sprintf("c-%d", i))
	}
	if lag := l.CheckpointLag(); lag != 4 {
		t.Fatalf("pre-checkpoint lag = %d, want 4", lag)
	}
	clk.advance(time.Second)
	if err := l.Checkpoint(last); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	tel := l.Telemetry(nil)
	if tel.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", tel.Checkpoints)
	}
	if tel.CheckpointDuration.Count != 1 {
		t.Errorf("CheckpointDuration.Count = %d, want 1", tel.CheckpointDuration.Count)
	}
	if tel.CheckpointLag != 0 {
		t.Errorf("post-checkpoint lag = %d, want 0", tel.CheckpointLag)
	}
	if tel.LiveBytes != 0 {
		t.Errorf("post-checkpoint LiveBytes = %d, want 0", tel.LiveBytes)
	}
	if tel.LogBytes != recordsStart {
		t.Errorf("post-checkpoint LogBytes = %d, want the %d-byte header region", tel.LogBytes, recordsStart)
	}
	if tel.CheckpointLSN != last {
		t.Errorf("CheckpointLSN = %d, want %d", tel.CheckpointLSN, last)
	}
}

// TestRegisterMetricsExport checks the registry wiring: the histograms
// and gauges land under their dynq_wal_* names with live values.
func TestRegisterMetricsExport(t *testing.T) {
	l, _ := createClocked(t)
	reg := obs.NewRegistry()
	l.RegisterMetrics(reg)
	appendSync(t, l, "exported")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	dump := buf.String()
	for _, want := range []string{
		"dynq_wal_fsync_seconds",
		"dynq_wal_batch_records",
		"dynq_wal_append_bytes",
		"dynq_wal_checkpoint_seconds",
		"dynq_wal_appends_total 1",
		"dynq_wal_checkpoint_lag_records 1",
		"dynq_wal_coalesce_ratio",
		"dynq_wal_log_bytes",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("registry dump missing %q", want)
		}
	}
}
