package wal

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// TestRetrySyncClearsStickyError: a failed fsync poisons the log (every
// durability wait reports it), and RetrySync is the one path that
// retries the fsync and — on success — clears the sticky error and
// marks the appended records durable.
func TestRetrySyncClearsStickyError(t *testing.T) {
	var fsyncFail atomic.Bool
	errInject := errors.New("injected fsync failure")
	l, _, err := Open(filepath.Join(t.TempDir(), "x.wal"), Options{
		GroupCommitWindow: -1, // fsync every commit round
		Fault: func(op string) error {
			if op == "fsync" && fsyncFail.Load() {
				return errInject
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	fsyncFail.Store(true)
	lsn, err := l.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncNow(lsn); !errors.Is(err, errInject) {
		t.Fatalf("SyncNow with failing fsync returned %v, want the injected error", err)
	}
	if err := l.SyncErr(); !errors.Is(err, errInject) {
		t.Fatalf("sticky SyncErr = %v, want the injected error", err)
	}
	// The error stays sticky even for records that were already durable.
	if err := l.SyncNow(lsn); !errors.Is(err, errInject) {
		t.Fatalf("second SyncNow returned %v, want the sticky error", err)
	}

	// Retry while the device still fails: sticky error stays.
	if err := l.RetrySync(); !errors.Is(err, errInject) {
		t.Fatalf("RetrySync with failing fsync returned %v, want the injected error", err)
	}

	// Device recovers: RetrySync clears the error and advances durability.
	fsyncFail.Store(false)
	if err := l.RetrySync(); err != nil {
		t.Fatalf("RetrySync after recovery: %v", err)
	}
	if err := l.SyncErr(); err != nil {
		t.Fatalf("SyncErr after successful retry = %v, want nil", err)
	}
	if got := l.DurableLSN(); got != lsn {
		t.Fatalf("DurableLSN after retry = %d, want %d", got, lsn)
	}
	// Normal appends work again.
	lsn2, err := l.Append([]byte("healed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncNow(lsn2); err != nil {
		t.Fatalf("SyncNow after recovery: %v", err)
	}
}
