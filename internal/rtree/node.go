package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"dynq/internal/geom"
	"dynq/internal/pager"
)

// On-disk node layout (little endian):
//
//	offset 0   uint8   level (0 = leaf)
//	offset 1   uint8   flags (bit0: dual temporal layout)
//	offset 2   uint16  entry count
//	offset 4   uint64  modification stamp
//	offset 12  4 bytes reserved
//	offset 16  entries
//
// Leaf entry (8 + (2d+2)·4 bytes): object id uint64, then f32 start
// coordinates, f32 end coordinates, f32 t_l, f32 t_h.
//
// Internal entry ((2d+2)·4 + 4 or (2d+4)·4 + 4 bytes): f32 lo/hi per
// spatial dimension, then either the single time extent (union of the
// subtree's validity intervals) or — in the dual layout — the start-time
// extent followed by the end-time extent, then the child page id uint32.
const nodeHeaderSize = 16

const flagDualTime = 1 << 0

func encodeNode(cfg Config, n *Node, buf []byte) error {
	if len(buf) != pager.PageSize {
		return pager.ErrBadPageData
	}
	clear(buf)
	var maxEntries int
	if n.Leaf() {
		maxEntries = cfg.MaxLeafEntries()
	} else {
		maxEntries = cfg.MaxInternalEntries()
	}
	if n.Len() > maxEntries {
		return fmt.Errorf("rtree: node %d has %d entries, page fits %d", n.ID, n.Len(), maxEntries)
	}
	if n.Level > 255 {
		return fmt.Errorf("rtree: level %d out of range", n.Level)
	}
	buf[0] = byte(n.Level)
	if cfg.DualTime {
		buf[1] = flagDualTime
	}
	binary.LittleEndian.PutUint16(buf[2:], uint16(n.Len()))
	binary.LittleEndian.PutUint64(buf[4:], n.Stamp)

	off := nodeHeaderSize
	putF32 := func(v float32) {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	if n.Leaf() {
		d := cfg.Dims
		for _, e := range n.Entries {
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.ID))
			off += 8
			for i := 0; i < d; i++ {
				putF32(float32(e.Seg.Start[i]))
			}
			for i := 0; i < d; i++ {
				putF32(float32(e.Seg.End[i]))
			}
			putF32(float32(e.Seg.T.Lo))
			putF32(float32(e.Seg.T.Hi))
		}
		return nil
	}
	d := cfg.Dims
	for _, c := range n.Children {
		if len(c.Box) != d+2 {
			return fmt.Errorf("rtree: child box has %d dims, want %d", len(c.Box), d+2)
		}
		for i := 0; i < d; i++ {
			lo, hi := geom.IntervalToF32(c.Box[i])
			putF32(lo)
			putF32(hi)
		}
		ts, te := c.Box[d], c.Box[d+1]
		if cfg.DualTime {
			lo, hi := geom.IntervalToF32(ts)
			putF32(lo)
			putF32(hi)
			lo, hi = geom.IntervalToF32(te)
			putF32(lo)
			putF32(hi)
		} else {
			// Single-axis layout keeps only the union validity interval.
			hull := geom.Interval{Lo: ts.Lo, Hi: te.Hi}
			lo, hi := geom.IntervalToF32(hull)
			putF32(lo)
			putF32(hi)
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(c.ID))
		off += 4
	}
	return nil
}

// DecodePage decodes one on-disk node page under cfg. It is the exported
// entry point for the recovery walk (which must inspect pages without a
// live tree) and for fuzzing: on arbitrary bytes it returns an error,
// never panics.
func DecodePage(cfg Config, id pager.PageID, buf []byte) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return decodeNode(cfg, id, buf)
}

func decodeNode(cfg Config, id pager.PageID, buf []byte) (*Node, error) {
	if len(buf) != pager.PageSize {
		return nil, pager.ErrBadPageData
	}
	level := int(buf[0])
	dual := buf[1]&flagDualTime != 0
	if dual != cfg.DualTime {
		return nil, fmt.Errorf("rtree: page %d temporal layout (dual=%v) does not match tree config (dual=%v)", id, dual, cfg.DualTime)
	}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	n := &Node{
		ID:    id,
		Level: level,
		Stamp: binary.LittleEndian.Uint64(buf[4:]),
	}
	off := nodeHeaderSize
	getF32 := func() float64 {
		v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		return float64(v)
	}
	d := cfg.Dims
	if level == 0 {
		if count > cfg.MaxLeafEntries() {
			return nil, fmt.Errorf("rtree: page %d leaf count %d exceeds fanout", id, count)
		}
		n.Entries = make([]LeafEntry, count)
		for k := range n.Entries {
			e := &n.Entries[k]
			e.ID = ObjectID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			e.Seg.Start = make(geom.Point, d)
			e.Seg.End = make(geom.Point, d)
			for i := 0; i < d; i++ {
				e.Seg.Start[i] = getF32()
			}
			for i := 0; i < d; i++ {
				e.Seg.End[i] = getF32()
			}
			e.Seg.T.Lo = getF32()
			e.Seg.T.Hi = getF32()
		}
		return n, nil
	}
	if count > cfg.MaxInternalEntries() {
		return nil, fmt.Errorf("rtree: page %d internal count %d exceeds fanout", id, count)
	}
	n.Children = make([]Child, count)
	for k := range n.Children {
		c := &n.Children[k]
		c.Box = make(geom.Box, d+2)
		for i := 0; i < d; i++ {
			c.Box[i] = geom.Interval{Lo: getF32(), Hi: getF32()}
		}
		if cfg.DualTime {
			c.Box[d] = geom.Interval{Lo: getF32(), Hi: getF32()}
			c.Box[d+1] = geom.Interval{Lo: getF32(), Hi: getF32()}
		} else {
			// Reconstruct a conservative dual box from the stored union
			// interval: both temporal axes span the whole hull.
			hull := geom.Interval{Lo: getF32(), Hi: getF32()}
			c.Box[d] = hull
			c.Box[d+1] = hull
		}
		c.ID = pager.PageID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return n, nil
}

// QuantizeSegment rounds a segment's coordinates to float32, the on-disk
// key precision. Insert applies it, so a retrieved segment compares equal
// to the quantized form of the inserted one.
func QuantizeSegment(s geom.Segment) geom.Segment {
	q := geom.Segment{
		T:     geom.Interval{Lo: float64(float32(s.T.Lo)), Hi: float64(float32(s.T.Hi))},
		Start: make(geom.Point, len(s.Start)),
		End:   make(geom.Point, len(s.End)),
	}
	for i := range s.Start {
		q.Start[i] = float64(float32(s.Start[i]))
	}
	for i := range s.End {
		q.End[i] = float64(float32(s.End[i]))
	}
	return q
}
