package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/stats"
)

// smallConfig shrinks pages' logical fanout indirectly by using high Dims?
// No — fanout is fixed by the page size, so tests that need many splits
// simply insert thousands of segments.

func randSegment(r *rand.Rand) geom.Segment {
	t0 := r.Float64() * 100
	dt := 0.2 + r.Float64()*2
	start := geom.Point{r.Float64() * 100, r.Float64() * 100}
	vel := geom.Point{r.Float64()*2 - 1, r.Float64()*2 - 1}
	return geom.Segment{
		T:     geom.Interval{Lo: t0, Hi: t0 + dt},
		Start: start,
		End:   geom.Point{start[0] + vel[0]*dt, start[1] + vel[1]*dt},
	}
}

func buildRandomTree(t *testing.T, cfg Config, n int, seed int64) (*Tree, []LeafEntry) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tree, err := New(cfg, pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	var entries []LeafEntry
	for i := 0; i < n; i++ {
		seg := randSegment(r)
		id := ObjectID(i)
		if err := tree.Insert(id, seg); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		entries = append(entries, LeafEntry{ID: id, Seg: QuantizeSegment(seg)})
	}
	return tree, entries
}

func bruteForceRange(entries []LeafEntry, spatial geom.Box, tw geom.Interval) map[ObjectID][]geom.Segment {
	out := map[ObjectID][]geom.Segment{}
	q := append(spatial.Clone(), tw)
	for _, e := range entries {
		if e.Seg.IntersectsBox(q) {
			out[e.ID] = append(out[e.ID], e.Seg)
		}
	}
	return out
}

func assertSameMatches(t *testing.T, got []Match, want map[ObjectID][]geom.Segment) {
	t.Helper()
	gotCount := 0
	for _, m := range got {
		segs, ok := want[m.ID]
		found := false
		for _, s := range segs {
			if s.T == m.Seg.T {
				found = true
				break
			}
		}
		if !ok || !found {
			t.Errorf("unexpected match: obj %d seg %v", m.ID, m.Seg.T)
			continue
		}
		gotCount++
	}
	wantCount := 0
	for _, segs := range want {
		wantCount += len(segs)
	}
	if gotCount != wantCount || len(got) != wantCount {
		t.Errorf("match count = %d, want %d", len(got), wantCount)
	}
}

func TestEmptyTree(t *testing.T) {
	tree, err := New(DefaultConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 0 || tree.Height() != 0 {
		t.Error("fresh tree should be empty")
	}
	if _, _, ok := tree.Root(); ok {
		t.Error("empty tree should have no root")
	}
	var c stats.Counters
	ms, err := tree.RangeSearch(geom.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, geom.Interval{Lo: 0, Hi: 1}, SearchOptions{}, &c)
	if err != nil || len(ms) != 0 {
		t.Errorf("empty search: %v %v", ms, err)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("validate empty: %v", err)
	}
	if err := tree.Delete(1, 0); err != ErrNotFound {
		t.Errorf("delete on empty = %v", err)
	}
}

func TestInsertRejectsBadSegments(t *testing.T) {
	tree, _ := New(DefaultConfig(), pager.NewMemStore())
	bad := geom.Segment{T: geom.Interval{Lo: 1, Hi: 0}, Start: geom.Point{0, 0}, End: geom.Point{1, 1}}
	if err := tree.Insert(1, bad); err == nil {
		t.Error("empty validity interval should be rejected")
	}
	wrongDims := geom.Segment{T: geom.Interval{Lo: 0, Hi: 1}, Start: geom.Point{0}, End: geom.Point{1}}
	if err := tree.Insert(1, wrongDims); err == nil {
		t.Error("wrong dimensionality should be rejected")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tree, entries := buildRandomTree(t, DefaultConfig(), 100, 1)
	if tree.Size() != 100 {
		t.Fatalf("size = %d", tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	var c stats.Counters
	spatial := geom.Box{{Lo: 20, Hi: 50}, {Lo: 20, Hi: 50}}
	tw := geom.Interval{Lo: 10, Hi: 40}
	got, err := tree.RangeSearch(spatial, tw, SearchOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, got, bruteForceRange(entries, spatial, tw))
	if c.Snapshot().Reads() == 0 {
		t.Error("search should have charged disk accesses")
	}
}

func TestInsertSearchLargeWithSplits(t *testing.T) {
	// Enough entries to force leaf and internal splits (leaf fanout 127).
	for _, policy := range []SplitPolicy{SplitQuadratic, SplitLinear, SplitRStarAxis} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Split = policy
			tree, entries := buildRandomTree(t, cfg, 3000, 2)
			if tree.Height() < 2 {
				t.Fatalf("expected splits; height = %d", tree.Height())
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			for _, q := range []struct {
				spatial geom.Box
				tw      geom.Interval
			}{
				{geom.Box{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 10}}, geom.Interval{Lo: 0, Hi: 100}},
				{geom.Box{{Lo: 40, Hi: 60}, {Lo: 40, Hi: 60}}, geom.Interval{Lo: 50, Hi: 55}},
				{geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}, geom.Interval{Lo: 99, Hi: 100}},
				{geom.Box{{Lo: -10, Hi: -5}, {Lo: 0, Hi: 100}}, geom.Interval{Lo: 0, Hi: 100}}, // nothing there
			} {
				var c stats.Counters
				got, err := tree.RangeSearch(q.spatial, q.tw, SearchOptions{}, &c)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, got, bruteForceRange(entries, q.spatial, q.tw))
			}
		})
	}
}

func TestDualTimeSearch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DualTime = true
	tree, entries := buildRandomTree(t, cfg, 2000, 3)
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	var c stats.Counters
	spatial := geom.Box{{Lo: 30, Hi: 45}, {Lo: 10, Hi: 80}}
	tw := geom.Interval{Lo: 20, Hi: 21}
	got, err := tree.RangeSearch(spatial, tw, SearchOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, got, bruteForceRange(entries, spatial, tw))
}

func TestBBOnlyLeafIsSuperset(t *testing.T) {
	tree, _ := buildRandomTree(t, DefaultConfig(), 1500, 4)
	spatial := geom.Box{{Lo: 10, Hi: 20}, {Lo: 10, Hi: 20}}
	tw := geom.Interval{Lo: 30, Hi: 32}
	var c1, c2 stats.Counters
	exact, err := tree.RangeSearch(spatial, tw, SearchOptions{}, &c1)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := tree.RangeSearch(spatial, tw, SearchOptions{BBOnlyLeaf: true}, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) < len(exact) {
		t.Errorf("BB-only results (%d) must be a superset of exact (%d)", len(loose), len(exact))
	}
	key := func(m Match) [2]float64 { return [2]float64{float64(m.ID), m.Seg.T.Lo} }
	seen := map[[2]float64]bool{}
	for _, m := range loose {
		seen[key(m)] = true
	}
	for _, m := range exact {
		if !seen[key(m)] {
			t.Errorf("exact match %v missing from BB-only results", key(m))
		}
	}
}

// Property: insert-then-search finds exactly the brute-force answer for
// random workloads and random queries under every split policy.
func TestSearchMatchesBruteForceProperty(t *testing.T) {
	policies := []SplitPolicy{SplitQuadratic, SplitLinear, SplitRStarAxis}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Split = policies[r.Intn(len(policies))]
		cfg.DualTime = r.Intn(2) == 0
		tree, err := New(cfg, pager.NewMemStore())
		if err != nil {
			return false
		}
		var entries []LeafEntry
		n := 200 + r.Intn(400)
		for i := 0; i < n; i++ {
			seg := randSegment(r)
			if err := tree.Insert(ObjectID(i), seg); err != nil {
				return false
			}
			entries = append(entries, LeafEntry{ID: ObjectID(i), Seg: QuantizeSegment(seg)})
		}
		if err := tree.Validate(); err != nil {
			return false
		}
		for k := 0; k < 5; k++ {
			spatial := geom.Box{
				{Lo: r.Float64() * 80},
				{Lo: r.Float64() * 80},
			}
			spatial[0].Hi = spatial[0].Lo + r.Float64()*30
			spatial[1].Hi = spatial[1].Lo + r.Float64()*30
			lo := r.Float64() * 90
			tw := geom.Interval{Lo: lo, Hi: lo + r.Float64()*10}
			var c stats.Counters
			got, err := tree.RangeSearch(spatial, tw, SearchOptions{}, &c)
			if err != nil {
				return false
			}
			want := bruteForceRange(entries, spatial, tw)
			wantCount := 0
			for _, segs := range want {
				wantCount += len(segs)
			}
			if len(got) != wantCount {
				return false
			}
			for _, m := range got {
				ok := false
				for _, s := range want[m.ID] {
					if s.T == m.Seg.T {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestTreeStats(t *testing.T) {
	tree, _ := buildRandomTree(t, DefaultConfig(), 2000, 5)
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 2000 || st.LeafNodes == 0 || st.Height != tree.Height() {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgLeafFill <= 0 || st.AvgLeafFill > 1 {
		t.Errorf("leaf fill = %v", st.AvgLeafFill)
	}
	if st.MaxLeafFan != 127 || st.MaxIntFan != 145 {
		t.Errorf("fanouts = %d/%d", st.MaxLeafFan, st.MaxIntFan)
	}
}

func TestDelete(t *testing.T) {
	tree, entries := buildRandomTree(t, DefaultConfig(), 1000, 6)
	r := rand.New(rand.NewSource(7))
	// Delete half the entries in random order.
	perm := r.Perm(len(entries))
	removed := map[int]bool{}
	for _, i := range perm[:500] {
		e := entries[i]
		if err := tree.Delete(e.ID, e.Seg.T.Lo); err != nil {
			t.Fatalf("delete %d: %v", e.ID, err)
		}
		removed[i] = true
	}
	if tree.Size() != 500 {
		t.Fatalf("size after deletes = %d", tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate after deletes: %v", err)
	}
	// Deleted entries are gone; remaining entries are still found.
	var live []LeafEntry
	for i, e := range entries {
		if !removed[i] {
			live = append(live, e)
		}
	}
	var c stats.Counters
	got, err := tree.RangeSearch(geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}, geom.Interval{Lo: 0, Hi: 200}, SearchOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(live) {
		t.Errorf("post-delete search found %d, want %d", len(got), len(live))
	}
	// Deleting again reports not found.
	if err := tree.Delete(entries[perm[0]].ID, entries[perm[0]].Seg.T.Lo); err != ErrNotFound {
		t.Errorf("double delete = %v", err)
	}
	// Delete everything: tree becomes empty.
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	for _, e := range live {
		if err := tree.Delete(e.ID, e.Seg.T.Lo); err != nil {
			t.Fatalf("final delete %d: %v", e.ID, err)
		}
	}
	if tree.Size() != 0 || tree.Height() != 0 {
		t.Errorf("tree should be empty: size=%d height=%d", tree.Size(), tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("validate empty: %v", err)
	}
}

func TestRestoreMeta(t *testing.T) {
	store := pager.NewMemStore()
	cfg := DefaultConfig()
	tree, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	var entries []LeafEntry
	for i := 0; i < 500; i++ {
		seg := randSegment(r)
		tree.Insert(ObjectID(i), seg)
		entries = append(entries, LeafEntry{ID: ObjectID(i), Seg: QuantizeSegment(seg)})
	}
	m := tree.Meta()
	tree2, err := Restore(m.Config, store, m.Root, m.Height, m.Size, m.ModSeq)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Size() != 500 || tree2.Height() != tree.Height() {
		t.Errorf("restored shape: size=%d height=%d", tree2.Size(), tree2.Height())
	}
	var c stats.Counters
	spatial := geom.Box{{Lo: 0, Hi: 50}, {Lo: 0, Hi: 50}}
	tw := geom.Interval{Lo: 0, Hi: 50}
	got, err := tree2.RangeSearch(spatial, tw, SearchOptions{}, &c)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, got, bruteForceRange(entries, spatial, tw))
}

func TestBufferedTreeCountsFewerStoreReads(t *testing.T) {
	store := pager.NewMemStore()
	cfg := DefaultConfig()
	tree, err := NewBuffered(cfg, store, 4096)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		tree.Insert(ObjectID(i), randSegment(r))
	}
	tree.Pool().ResetStats()
	var c stats.Counters
	spatial := geom.Box{{Lo: 10, Hi: 30}, {Lo: 10, Hi: 30}}
	tw := geom.Interval{Lo: 10, Hi: 12}
	if _, err := tree.RangeSearch(spatial, tw, SearchOptions{}, &c); err != nil {
		t.Fatal(err)
	}
	firstMisses := tree.Pool().Misses()
	if _, err := tree.RangeSearch(spatial, tw, SearchOptions{}, &c); err != nil {
		t.Fatal(err)
	}
	if tree.Pool().Misses() != firstMisses {
		t.Errorf("repeat query should be fully buffered: misses %d -> %d", firstMisses, tree.Pool().Misses())
	}
	if tree.Pool().Hits() == 0 {
		t.Error("expected buffer hits on the repeat query")
	}
}
