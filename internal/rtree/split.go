package rtree

import (
	"math"
	"sort"

	"dynq/internal/geom"
)

// splitGroups partitions the indices of an over-full node's entry boxes
// into two groups, each holding at least minEntries. The groups are
// returned as index slices into boxes; together they cover every index
// exactly once.
func splitGroups(policy SplitPolicy, boxes []geom.Box, minEntries int) (a, b []int) {
	switch policy {
	case SplitLinear:
		return splitLinear(boxes, minEntries)
	case SplitRStarAxis:
		return splitRStar(boxes, minEntries)
	default:
		return splitQuadratic(boxes, minEntries)
	}
}

// splitQuadratic is Guttman's quadratic split: pick the pair of entries
// whose combined box wastes the most area as seeds, then assign remaining
// entries one at a time to the group whose cover grows least.
func splitQuadratic(boxes []geom.Box, minEntries int) (a, b []int) {
	n := len(boxes)
	seedA, seedB := pickSeedsQuadratic(boxes)
	a = []int{seedA}
	b = []int{seedB}
	coverA := boxes[seedA].Clone()
	coverB := boxes[seedB].Clone()

	rest := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// If one group must take everything left to reach minEntries, do it.
		if len(a)+len(rest) <= minEntries {
			for _, i := range rest {
				a = append(a, i)
			}
			break
		}
		if len(b)+len(rest) <= minEntries {
			for _, i := range rest {
				b = append(b, i)
			}
			break
		}
		// PickNext: the entry with the greatest preference difference.
		bestK, bestDiff := 0, -1.0
		var bestDA, bestDB float64
		for k, i := range rest {
			da := growthCost(coverA, boxes[i])
			db := growthCost(coverB, boxes[i])
			diff := math.Abs(da - db)
			if diff > bestDiff {
				bestK, bestDiff, bestDA, bestDB = k, diff, da, db
			}
		}
		i := rest[bestK]
		rest = append(rest[:bestK], rest[bestK+1:]...)
		toA := bestDA < bestDB
		if bestDA == bestDB {
			// Resolve ties by smaller cover, then fewer entries.
			switch {
			case coverA.Area() != coverB.Area():
				toA = coverA.Area() < coverB.Area()
			default:
				toA = len(a) <= len(b)
			}
		}
		if toA {
			a = append(a, i)
			coverA.CoverInPlace(boxes[i])
		} else {
			b = append(b, i)
			coverB.CoverInPlace(boxes[i])
		}
	}
	return a, b
}

// growthCost measures how much a group's cover grows by admitting box:
// area enlargement with a margin fallback for the degenerate zero-area
// boxes that are common in space-time keys.
func growthCost(cover, box geom.Box) float64 {
	if d := cover.Enlargement(box); d != 0 {
		return d
	}
	return cover.Cover(box).Margin() - cover.Margin()
}

// pickSeedsQuadratic returns the pair wasting the most room if grouped
// together (Guttman's PickSeeds), with a margin-based fallback when all
// pair areas are degenerate.
func pickSeedsQuadratic(boxes []geom.Box) (int, int) {
	n := len(boxes)
	bestI, bestJ, bestWaste := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cover := boxes[i].Cover(boxes[j])
			waste := cover.Area() - boxes[i].Area() - boxes[j].Area()
			if waste == 0 {
				waste = 1e-9 * (cover.Margin() - boxes[i].Margin() - boxes[j].Margin())
			}
			if waste > bestWaste {
				bestI, bestJ, bestWaste = i, j, waste
			}
		}
	}
	return bestI, bestJ
}

// splitLinear is Guttman's linear split: seeds are the pair with the
// greatest normalized separation along any dimension; remaining entries
// are assigned by least growth, respecting minEntries.
func splitLinear(boxes []geom.Box, minEntries int) (a, b []int) {
	n := len(boxes)
	dims := len(boxes[0])
	seedA, seedB, bestSep := 0, 1, math.Inf(-1)
	for d := 0; d < dims; d++ {
		// Highest low side and lowest high side, plus overall width.
		hiLo, loHi := 0, 0
		width := geom.EmptyInterval()
		for i, bx := range boxes {
			if bx[d].Lo > boxes[hiLo][d].Lo {
				hiLo = i
			}
			if bx[d].Hi < boxes[loHi][d].Hi {
				loHi = i
			}
			width = width.Cover(bx[d])
		}
		if hiLo == loHi {
			continue
		}
		sep := boxes[hiLo][d].Lo - boxes[loHi][d].Hi
		if w := width.Length(); w > 0 {
			sep /= w
		}
		if sep > bestSep {
			seedA, seedB, bestSep = loHi, hiLo, sep
		}
	}
	if seedA == seedB {
		seedB = (seedA + 1) % n
	}
	a = []int{seedA}
	b = []int{seedB}
	coverA := boxes[seedA].Clone()
	coverB := boxes[seedB].Clone()
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		remaining := n - len(a) - len(b) // including i
		switch {
		case len(a)+remaining <= minEntries:
			a = append(a, i)
			coverA.CoverInPlace(boxes[i])
		case len(b)+remaining <= minEntries:
			b = append(b, i)
			coverB.CoverInPlace(boxes[i])
		case growthCost(coverA, boxes[i]) <= growthCost(coverB, boxes[i]):
			a = append(a, i)
			coverA.CoverInPlace(boxes[i])
		default:
			b = append(b, i)
			coverB.CoverInPlace(boxes[i])
		}
	}
	return a, b
}

// splitRStar is the R*-tree split: choose the axis minimizing the summed
// margins of all candidate distributions, then the distribution on that
// axis with the least overlap between the two covers (area as tiebreak).
func splitRStar(boxes []geom.Box, minEntries int) (a, b []int) {
	n := len(boxes)
	dims := len(boxes[0])

	type distribution struct {
		order []int
		split int // first split index in [minEntries, n-minEntries]
	}
	bestAxisMargin := math.Inf(1)
	var axisOrders [][]int // the two sort orders of the winning axis
	for d := 0; d < dims; d++ {
		byLo := sortedOrder(boxes, func(i, j int) bool { return boxes[i][d].Lo < boxes[j][d].Lo })
		byHi := sortedOrder(boxes, func(i, j int) bool { return boxes[i][d].Hi < boxes[j][d].Hi })
		margin := 0.0
		for _, order := range [][]int{byLo, byHi} {
			for s := minEntries; s <= n-minEntries; s++ {
				ca, cb := coversOf(boxes, order, s)
				margin += ca.Margin() + cb.Margin()
			}
		}
		if margin < bestAxisMargin {
			bestAxisMargin = margin
			axisOrders = [][]int{byLo, byHi}
		}
	}

	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	var best distribution
	for _, order := range axisOrders {
		for s := minEntries; s <= n-minEntries; s++ {
			ca, cb := coversOf(boxes, order, s)
			ov := ca.Intersect(cb).Area()
			ar := ca.Area() + cb.Area()
			if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
				bestOverlap, bestArea = ov, ar
				best = distribution{order: order, split: s}
			}
		}
	}
	a = append([]int(nil), best.order[:best.split]...)
	b = append([]int(nil), best.order[best.split:]...)
	return a, b
}

func sortedOrder(boxes []geom.Box, less func(i, j int) bool) []int {
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return less(order[x], order[y]) })
	return order
}

func coversOf(boxes []geom.Box, order []int, split int) (geom.Box, geom.Box) {
	ca := geom.NewBox(len(boxes[0]))
	cb := geom.NewBox(len(boxes[0]))
	for _, i := range order[:split] {
		ca.CoverInPlace(boxes[i])
	}
	for _, i := range order[split:] {
		cb.CoverInPlace(boxes[i])
	}
	return ca, cb
}
