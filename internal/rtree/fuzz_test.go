package rtree

import (
	"testing"

	"dynq/internal/geom"
	"dynq/internal/pager"
)

// FuzzDecodePage asserts the node codec's contract on hostile input:
// whatever bytes a corrupt page contains, DecodePage returns an error or
// a well-formed node — it never panics or over-reads. A decoded node
// must also survive re-encoding (its entry counts fit the fanout).
func FuzzDecodePage(f *testing.F) {
	// Seed with real encodings: a leaf and an internal page in both
	// temporal layouts, plus degenerate headers.
	for _, dual := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.DualTime = dual
		leaf := &Node{Level: 0, Stamp: 3}
		for i := 0; i < 4; i++ {
			leaf.Entries = append(leaf.Entries, LeafEntry{
				ID: ObjectID(i),
				Seg: geom.Segment{
					Start: geom.Point{float64(i), 0},
					End:   geom.Point{float64(i) + 1, 1},
					T:     geom.Interval{Lo: 0, Hi: 1},
				},
			})
		}
		buf := make([]byte, pager.PageSize)
		if err := encodeNode(cfg, leaf, buf); err != nil {
			f.Fatal(err)
		}
		f.Add(uint8(2), dual, append([]byte(nil), buf...))

		inner := &Node{Level: 1, Stamp: 9}
		box := make(geom.Box, cfg.boxDims())
		for i := range box {
			box[i] = geom.Interval{Lo: 0, Hi: 1}
		}
		inner.Children = []Child{{ID: 5, Box: box}}
		if err := encodeNode(cfg, inner, buf); err != nil {
			f.Fatal(err)
		}
		f.Add(uint8(2), dual, append([]byte(nil), buf...))
	}
	f.Add(uint8(0), false, []byte{})
	f.Add(uint8(7), true, []byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, dims uint8, dual bool, data []byte) {
		cfg := DefaultConfig()
		cfg.Dims = 1 + int(dims%8)
		cfg.DualTime = dual
		page := make([]byte, pager.PageSize)
		copy(page, data)
		n, err := DecodePage(cfg, 7, page)
		if err != nil {
			return
		}
		if n == nil {
			t.Fatal("nil node with nil error")
		}
		out := make([]byte, pager.PageSize)
		if err := encodeNode(cfg, n, out); err != nil {
			t.Fatalf("decoded node does not re-encode: %v", err)
		}
	})
}
