package rtree

import (
	"math"
	"math/rand"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/stats"
)

func randEntries(n int, seed int64) []LeafEntry {
	r := rand.New(rand.NewSource(seed))
	entries := make([]LeafEntry, n)
	for i := range entries {
		entries[i] = LeafEntry{ID: ObjectID(i), Seg: randSegment(r)}
	}
	return entries
}

func TestBulkLoadEmpty(t *testing.T) {
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 0 || tree.Height() != 0 {
		t.Error("bulk loading nothing should yield an empty tree")
	}
}

func TestBulkLoadSmall(t *testing.T) {
	entries := randEntries(50, 1)
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 50 || tree.Height() != 1 {
		t.Errorf("size=%d height=%d, want 50/1", tree.Size(), tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadLargeMatchesBruteForce(t *testing.T) {
	entries := randEntries(20000, 2)
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Height check: 20000 / 63 ≈ 318 leaves, / 72 ≈ 5, / 72 → 1: height 3.
	if tree.Height() != 3 {
		t.Errorf("height = %d, want 3", tree.Height())
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Bulk fill should be close to the configured 0.5 (the last node of a
	// level may be emptier).
	if st.AvgLeafFill < 0.42 || st.AvgLeafFill > 0.55 {
		t.Errorf("leaf fill = %v, want ≈0.5", st.AvgLeafFill)
	}
	quant := make([]LeafEntry, len(entries))
	for i, e := range entries {
		quant[i] = LeafEntry{ID: e.ID, Seg: QuantizeSegment(e.Seg)}
	}
	for _, q := range []struct {
		spatial geom.Box
		tw      geom.Interval
	}{
		{geom.Box{{Lo: 10, Hi: 18}, {Lo: 40, Hi: 48}}, geom.Interval{Lo: 20, Hi: 20.5}},
		{geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}, geom.Interval{Lo: 0, Hi: 1}},
		{geom.Box{{Lo: 77, Hi: 99}, {Lo: 1, Hi: 9}}, geom.Interval{Lo: 90, Hi: 102}},
	} {
		var c stats.Counters
		got, err := tree.RangeSearch(q.spatial, q.tw, SearchOptions{}, &c)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, got, bruteForceRange(quant, q.spatial, q.tw))
	}
}

func TestBulkLoadThenInsertAndDelete(t *testing.T) {
	entries := randEntries(5000, 3)
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	var extra []LeafEntry
	for i := 0; i < 500; i++ {
		e := LeafEntry{ID: ObjectID(100000 + i), Seg: randSegment(r)}
		if err := tree.Insert(e.ID, e.Seg); err != nil {
			t.Fatal(err)
		}
		extra = append(extra, LeafEntry{ID: e.ID, Seg: QuantizeSegment(e.Seg)})
	}
	if tree.Size() != 5500 {
		t.Fatalf("size = %d", tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate after mixed load: %v", err)
	}
	for _, e := range extra[:100] {
		if err := tree.Delete(e.ID, e.Seg.T.Lo); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate after deletes: %v", err)
	}
	if tree.Size() != 5400 {
		t.Errorf("size = %d", tree.Size())
	}
}

func TestBulkLoadPaperScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build skipped in -short mode")
	}
	// The paper's index: ~502k segments, fill 0.5, fanout 145/127 → the
	// leaf level needs ~7900 nodes and the tree 4 levels (the paper counts
	// height 3, i.e. internal levels; either way the shape must be stable).
	entries := randEntries(502504, 5)
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantLeaves := int(math.Ceil(502504.0 / 63.0))
	if st.LeafNodes < wantLeaves-10 || st.LeafNodes > wantLeaves+220 {
		t.Errorf("leaf nodes = %d, want ≈%d", st.LeafNodes, wantLeaves)
	}
	if tree.Height() != 4 {
		t.Errorf("height = %d, want 4 (root + 2 internal + leaf)", tree.Height())
	}
}

// Property: bulk-loaded trees answer exactly like insert-built trees.
func TestBulkLoadEquivalentToInserts(t *testing.T) {
	entries := randEntries(800, 6)
	bulk, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := New(DefaultConfig(), pager.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := incr.Insert(e.ID, e.Seg); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(7))
	for k := 0; k < 10; k++ {
		lo0, lo1 := r.Float64()*80, r.Float64()*80
		spatial := geom.Box{{Lo: lo0, Hi: lo0 + 15}, {Lo: lo1, Hi: lo1 + 15}}
		start := r.Float64() * 95
		tw := geom.Interval{Lo: start, Hi: start + 3}
		var c1, c2 stats.Counters
		a, err := bulk.RangeSearch(spatial, tw, SearchOptions{}, &c1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := incr.RangeSearch(spatial, tw, SearchOptions{}, &c2)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("query %d: bulk found %d, incremental found %d", k, len(a), len(b))
		}
	}
}
