package rtree

import (
	"fmt"
	"math"
	"sort"

	"dynq/internal/pager"
)

// BulkLoad builds a tree from a segment set using Sort-Tile-Recursive
// packing at the configured bulk fill factor (the paper builds its index
// at 0.5 fill for both node kinds, Section 5). It is how the experiment
// harness constructs the half-million-segment index quickly; the resulting
// tree behaves identically to one built by repeated Insert calls.
func BulkLoad(cfg Config, store pager.Store, entries []LeafEntry) (*Tree, error) {
	t, err := New(cfg, store)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	leafCap := int(math.Floor(float64(cfg.MaxLeafEntries()) * cfg.BulkFill))
	if leafCap < 1 {
		leafCap = 1
	}
	intCap := int(math.Floor(float64(cfg.MaxInternalEntries()) * cfg.BulkFill))
	if intCap < 2 {
		intCap = 2
	}

	// Quantize to the on-disk precision up front, as Insert would.
	quant := make([]LeafEntry, len(entries))
	for i, e := range entries {
		if len(e.Seg.Start) != cfg.Dims || len(e.Seg.End) != cfg.Dims {
			return nil, fmt.Errorf("rtree: bulk entry %d has wrong dimensionality", i)
		}
		if e.Seg.T.Empty() {
			return nil, fmt.Errorf("rtree: bulk entry %d has empty validity interval", i)
		}
		quant[i] = LeafEntry{ID: e.ID, Seg: QuantizeSegment(e.Seg)}
	}

	// Pack leaves time-major: entries are first sliced into contiguous
	// runs of start times, then each slice is tiled spatially (STR). This
	// mirrors how the paper's index grows under time-ordered motion
	// updates — leaves are narrow in start time, which both matches a
	// historical database's natural layout and is what gives NPDQ
	// discardability its pruning opportunities (a node whose newest
	// segment predates the previous query can be covered by it).
	centers := make([][]float64, len(quant))
	for i, e := range quant {
		c := make([]float64, cfg.Dims+1)
		for d := 0; d < cfg.Dims; d++ {
			c[d] = (e.Seg.Start[d] + e.Seg.End[d]) / 2
		}
		c[cfg.Dims] = e.Seg.T.Lo
		centers[i] = c
	}
	order := timeMajorOrder(centers, cfg.Dims, leafCap, timeSlabs(cfg, quant, leafCap))

	level := make([]Child, 0, (len(quant)+leafCap-1)/leafCap)
	for lo := 0; lo < len(order); lo += leafCap {
		hi := min(lo+leafCap, len(order))
		n, err := t.alloc(0)
		if err != nil {
			return nil, err
		}
		n.Entries = make([]LeafEntry, 0, hi-lo)
		for _, k := range order[lo:hi] {
			n.Entries = append(n.Entries, quant[k])
		}
		if err := t.write(n); err != nil {
			return nil, err
		}
		level = append(level, Child{Box: n.MBR(cfg.Dims), ID: n.ID})
	}
	t.size = len(quant)
	t.height = 1

	// Pack upper levels by grouping consecutive children: the leaf order
	// is already time-major with spatial tiles inside each time slice, so
	// consecutive grouping preserves that locality at every level.
	for len(level) > 1 {
		next := make([]Child, 0, (len(level)+intCap-1)/intCap)
		for lo := 0; lo < len(level); lo += intCap {
			hi := min(lo+intCap, len(level))
			n, err := t.alloc(t.height)
			if err != nil {
				return nil, err
			}
			n.Children = append([]Child(nil), level[lo:hi]...)
			if err := t.write(n); err != nil {
				return nil, err
			}
			next = append(next, Child{Box: n.MBR(cfg.Dims), ID: n.ID})
		}
		level = next
		t.height++
	}
	t.root = level[0].ID
	return t, nil
}

// timeSlabs chooses how many contiguous start-time slices the bulk loader
// uses. The single-axis layout (the PDQ experiments) balances time
// against space (√pages slabs). The dual-axes layout exists for NPDQ
// discardability, whose pruning power comes from leaves whose newest
// start time predates the previous query — that requires slabs finer than
// a segment lifetime, so slab width targets a quarter of the median
// segment duration, floored so each slab still spans a few pages of
// spatial tiling.
func timeSlabs(cfg Config, entries []LeafEntry, leafCap int) int {
	pages := (len(entries) + leafCap - 1) / leafCap
	if pages <= 1 {
		return 1
	}
	balanced := int(math.Ceil(math.Sqrt(float64(pages))))
	if !cfg.DualTime {
		return balanced
	}
	durations := make([]float64, len(entries))
	tsMin, tsMax := math.Inf(1), math.Inf(-1)
	for i, e := range entries {
		durations[i] = e.Seg.T.Length()
		tsMin = math.Min(tsMin, e.Seg.T.Lo)
		tsMax = math.Max(tsMax, e.Seg.T.Lo)
	}
	sort.Float64s(durations)
	median := durations[len(durations)/2]
	if median <= 0 || tsMax <= tsMin {
		return balanced
	}
	slabs := int(math.Ceil((tsMax - tsMin) / (median / 4)))
	// Keep at least 4 pages per slab so each slab still tiles space.
	if maxSlabs := pages / 4; slabs > maxSlabs {
		slabs = maxSlabs
	}
	if slabs < 1 {
		slabs = 1
	}
	return slabs
}

// timeMajorOrder returns an ordering where entries are sorted by start
// time (the last center coordinate), sliced into the given number of
// contiguous time slices, and each slice is tiled spatially with STR over
// the first spatialDims coordinates.
func timeMajorOrder(centers [][]float64, spatialDims, groupSize, slabs int) []int {
	idx := make([]int, len(centers))
	for i := range idx {
		idx[i] = i
	}
	if len(idx) <= groupSize {
		return idx
	}
	tdim := len(centers[0]) - 1
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := centers[idx[a]], centers[idx[b]]
		if ca[tdim] != cb[tdim] {
			return ca[tdim] < cb[tdim]
		}
		return idx[a] < idx[b]
	})
	if slabs < 1 {
		slabs = 1
	}
	sliceLen := int(math.Ceil(float64(len(idx)) / float64(slabs)))
	if sliceLen < groupSize {
		sliceLen = groupSize
	}
	for lo := 0; lo < len(idx); lo += sliceLen {
		hi := min(lo+sliceLen, len(idx))
		strTile(idx[lo:hi], centers, 0, spatialDims, groupSize)
	}
	return idx
}

// strTile recursively sorts idx in place: slab-partition on dimension d,
// recurse on the remaining dimensions within each slab.
func strTile(idx []int, centers [][]float64, d, dims, groupSize int) {
	if len(idx) <= groupSize || d >= dims {
		return
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := centers[idx[a]], centers[idx[b]]
		if ca[d] != cb[d] {
			return ca[d] < cb[d]
		}
		return idx[a] < idx[b]
	})
	if d == dims-1 {
		return // final dimension: the sorted run is chunked by the caller
	}
	pages := int(math.Ceil(float64(len(idx)) / float64(groupSize)))
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dims-d))))
	if slabs < 1 {
		slabs = 1
	}
	slabLen := int(math.Ceil(float64(len(idx)) / float64(slabs)))
	if slabLen < groupSize {
		slabLen = groupSize
	}
	for lo := 0; lo < len(idx); lo += slabLen {
		hi := min(lo+slabLen, len(idx))
		strTile(idx[lo:hi], centers, d+1, dims, groupSize)
	}
}

// Restore reattaches an existing tree stored in store (built earlier by
// BulkLoad or Insert and persisted via Meta) without touching pages.
func Restore(cfg Config, store pager.Store, root pager.PageID, height, size int, modSeq uint64) (*Tree, error) {
	t, err := New(cfg, store)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = height
	t.size = size
	t.modSeq = modSeq
	return t, nil
}

// Meta captures what Restore needs to reopen a persisted tree.
type Meta struct {
	Root   pager.PageID
	Height int
	Size   int
	ModSeq uint64
	Config Config
}

// Meta returns the tree's persistence metadata.
func (t *Tree) Meta() Meta {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Meta{Root: t.root, Height: t.height, Size: t.size, ModSeq: t.modSeq, Config: t.cfg}
}
