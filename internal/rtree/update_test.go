package rtree

import (
	"math/rand"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/pager"
)

func TestUpdateNotificationEntryOnly(t *testing.T) {
	tree, _ := New(DefaultConfig(), pager.NewMemStore())
	var updates []Update
	tree.OnUpdate(func(u Update) { updates = append(updates, u) })
	seg := geom.Segment{T: geom.Interval{Lo: 0, Hi: 1}, Start: geom.Point{1, 1}, End: geom.Point{2, 2}}
	if err := tree.Insert(1, seg); err != nil {
		t.Fatal(err)
	}
	if len(updates) != 1 {
		t.Fatalf("got %d updates, want 1", len(updates))
	}
	u := updates[0]
	if u.Kind != UpdateEntry || u.Entry.ID != 1 {
		t.Errorf("update = %+v", u)
	}
}

func TestUpdateNotificationOnLeafSplit(t *testing.T) {
	tree, _ := New(DefaultConfig(), pager.NewMemStore())
	r := rand.New(rand.NewSource(1))
	var subtreeUpdates []Update
	tree.OnUpdate(func(u Update) {
		if u.Kind == UpdateSubtree {
			subtreeUpdates = append(subtreeUpdates, u)
		}
	})
	// 127 entries fill one leaf; the 128th splits it (and grows the root).
	for i := 0; i <= DefaultConfig().MaxLeafEntries(); i++ {
		if err := tree.Insert(ObjectID(i), randSegment(r)); err != nil {
			t.Fatal(err)
		}
	}
	if len(subtreeUpdates) != 1 {
		t.Fatalf("got %d subtree updates, want 1 (first leaf split)", len(subtreeUpdates))
	}
	u := subtreeUpdates[0]
	if !u.RootSplit {
		t.Error("first split grows the root, so RootSplit should be set")
	}
	if u.Level != 0 {
		t.Errorf("split node level = %d, want 0", u.Level)
	}
	// The notified subtree must contain the entry that caused the split
	// (the forced-path property).
	n, err := tree.Load(u.Node, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range n.Entries {
		if e.ID == ObjectID(DefaultConfig().MaxLeafEntries()) {
			found = true
		}
	}
	if !found {
		t.Error("the inserting entry must live in the newly created node")
	}
}

// The central guarantee of Section 4.1's update management: after any
// insertion, the notified region (segment or subtree) covers the inserted
// segment, so a running PDQ can find it without re-reading anything else.
func TestUpdateNotificationCoversInsertedSegment(t *testing.T) {
	tree, _ := New(DefaultConfig(), pager.NewMemStore())
	r := rand.New(rand.NewSource(2))
	var last []Update
	tree.OnUpdate(func(u Update) { last = append(last, u) })
	for i := 0; i < 4000; i++ {
		last = last[:0]
		seg := QuantizeSegment(randSegment(r))
		if err := tree.Insert(ObjectID(i), seg); err != nil {
			t.Fatal(err)
		}
		if len(last) != 1 {
			t.Fatalf("insert %d produced %d notifications, want exactly 1", i, len(last))
		}
		u := last[0]
		switch u.Kind {
		case UpdateEntry:
			if u.Entry.ID != ObjectID(i) || u.Entry.Seg.T != seg.T {
				t.Fatalf("insert %d: wrong entry notification %+v", i, u.Entry)
			}
		case UpdateSubtree:
			if !u.Box.Contains((LeafEntry{ID: ObjectID(i), Seg: seg}).Box(2)) {
				t.Fatalf("insert %d: notified subtree box %v does not cover the new segment", i, u.Box)
			}
			// Walk the notified subtree: the new segment must be inside.
			if !subtreeHasEntry(t, tree, u.Node, ObjectID(i), seg.T.Lo) {
				t.Fatalf("insert %d: notified subtree does not contain the new segment", i)
			}
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func subtreeHasEntry(t *testing.T, tree *Tree, id pager.PageID, obj ObjectID, tLo float64) bool {
	t.Helper()
	n, err := tree.Load(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			if e.ID == obj && e.Seg.T.Lo == tLo {
				return true
			}
		}
		return false
	}
	for _, ch := range n.Children {
		if subtreeHasEntry(t, tree, ch.ID, obj, tLo) {
			return true
		}
	}
	return false
}

func TestModSeqAndStamps(t *testing.T) {
	tree, _ := New(DefaultConfig(), pager.NewMemStore())
	r := rand.New(rand.NewSource(3))
	if tree.ModSeq() != 0 {
		t.Error("fresh tree should have ModSeq 0")
	}
	for i := 0; i < 300; i++ {
		tree.Insert(ObjectID(i), randSegment(r))
	}
	seqBefore := tree.ModSeq()
	if seqBefore != 300 {
		t.Errorf("ModSeq = %d, want 300", seqBefore)
	}
	// Root stamp reflects the last insertion that touched it. Any
	// insertion touches the root (MBR update), so its stamp is current.
	root, _, ok := tree.Root()
	if !ok {
		t.Fatal("tree should have a root")
	}
	n, err := tree.Load(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Stamp != seqBefore {
		t.Errorf("root stamp = %d, want %d", n.Stamp, seqBefore)
	}
	// A node untouched since some past sequence number retains its old
	// stamp: check that leaf stamps are all ≤ seq and at least one is old.
	var stamps []uint64
	var walk func(id pager.PageID)
	walk = func(id pager.PageID) {
		n, err := tree.Load(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n.Leaf() {
			stamps = append(stamps, n.Stamp)
			return
		}
		for _, ch := range n.Children {
			walk(ch.ID)
		}
	}
	walk(root)
	anyOld := false
	for _, s := range stamps {
		if s > seqBefore {
			t.Errorf("leaf stamp %d exceeds ModSeq %d", s, seqBefore)
		}
		if s < seqBefore {
			anyOld = true
		}
	}
	if len(stamps) > 1 && !anyOld {
		t.Error("expected at least one leaf not touched by the last insert")
	}
}
