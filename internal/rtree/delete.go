package rtree

import (
	"dynq/internal/geom"
	"dynq/internal/pager"
)

// Delete removes the segment with the given object id and validity start
// time (a motion update is uniquely identified by its object and start
// time, since an object's segments never overlap in time). It returns
// ErrNotFound if no such segment is indexed.
//
// The paper's workload is insert-only (motion updates append segments);
// deletion is provided for library completeness using Guttman's
// condense-tree: under-full nodes are dissolved and their entries
// reinserted.
func (t *Tree) Delete(id ObjectID, tStart float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == pager.InvalidPage {
		return ErrNotFound
	}
	tStart = float64(float32(tStart)) // match on-disk quantization
	t.modSeq++

	var orphanEntries []LeafEntry
	var orphanSubtrees []Child // with levels parallel in orphanLevels
	var orphanLevels []int

	found, _, err := t.deleteRec(t.root, t.height-1, id, tStart, &orphanEntries, &orphanSubtrees, &orphanLevels)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	t.size--

	// Shrink the root: an internal root with one child is replaced by it;
	// an empty leaf root empties the tree.
	for {
		n, err := t.load(t.root, nil)
		if err != nil {
			return err
		}
		if n.Leaf() {
			if len(n.Entries) == 0 {
				if err := t.pool.Free(t.root); err != nil {
					return err
				}
				t.root = pager.InvalidPage
				t.height = 0
			}
			break
		}
		if len(n.Children) != 1 {
			break
		}
		child := n.Children[0].ID
		if err := t.pool.Free(t.root); err != nil {
			return err
		}
		t.root = child
		t.height--
	}

	// Reinsert orphans. Subtrees go back at their original level so the
	// tree stays balanced; their entries keep their boxes.
	for k, ch := range orphanSubtrees {
		if err := t.reinsertSubtree(ch, orphanLevels[k]); err != nil {
			return err
		}
	}
	for _, e := range orphanEntries {
		if err := t.reinsertEntry(e); err != nil {
			return err
		}
	}
	return nil
}

// Contains reports whether a segment with the given object id and
// validity start time is indexed — the read-only twin of Delete's
// descent, used by the write path to validate deletions before they are
// WAL-logged.
func (t *Tree) Contains(id ObjectID, tStart float64) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == pager.InvalidPage {
		return false, nil
	}
	return t.containsRec(t.root, id, float64(float32(tStart)))
}

func (t *Tree) containsRec(page pager.PageID, id ObjectID, tStart float64) (bool, error) {
	n, err := t.load(page, nil)
	if err != nil {
		return false, err
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			if e.ID == id && e.Seg.T.Lo == tStart {
				return true, nil
			}
		}
		return false, nil
	}
	for _, ch := range n.Children {
		if ch.Box[t.cfg.Dims].Lo > tStart || ch.Box[t.cfg.Dims].Hi < tStart {
			continue
		}
		found, err := t.containsRec(ch.ID, id, tStart)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

// deleteRec removes the target from the subtree rooted at page. It
// returns whether the target was found and the subtree's updated MBR
// (empty if the node dissolved into orphans).
func (t *Tree) deleteRec(page pager.PageID, level int, id ObjectID, tStart float64,
	orphanEntries *[]LeafEntry, orphanSubtrees *[]Child, orphanLevels *[]int) (bool, geom.Box, error) {

	n, err := t.load(page, nil)
	if err != nil {
		return false, nil, err
	}
	if n.Leaf() {
		for i, e := range n.Entries {
			if e.ID == id && e.Seg.T.Lo == tStart {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				n.Stamp = t.modSeq
				if err := t.write(n); err != nil {
					return false, nil, err
				}
				return true, n.MBR(t.cfg.Dims), nil
			}
		}
		return false, n.MBR(t.cfg.Dims), nil
	}

	for ci := range n.Children {
		// Descend only into children whose box could hold the segment's
		// start time; we do not know the spatial location, so the temporal
		// axes prune. (Deletion is not on the paper's critical path.)
		ch := n.Children[ci]
		if ch.Box[t.cfg.Dims].Lo > tStart || ch.Box[t.cfg.Dims].Hi < tStart {
			continue
		}
		found, childMBR, err := t.deleteRec(ch.ID, level-1, id, tStart, orphanEntries, orphanSubtrees, orphanLevels)
		if err != nil {
			return false, nil, err
		}
		if !found {
			continue
		}
		// Condense: dissolve the child if it fell below minimum fill.
		childNode, err := t.load(ch.ID, nil)
		if err != nil {
			return false, nil, err
		}
		minFill := t.cfg.minLeafEntries()
		if !childNode.Leaf() {
			minFill = t.cfg.minInternalEntries()
		}
		if childNode.Len() < minFill {
			if childNode.Leaf() {
				*orphanEntries = append(*orphanEntries, childNode.Entries...)
			} else {
				for _, gc := range childNode.Children {
					*orphanSubtrees = append(*orphanSubtrees, gc)
					*orphanLevels = append(*orphanLevels, childNode.Level-1)
				}
			}
			if err := t.pool.Free(ch.ID); err != nil {
				return false, nil, err
			}
			n.Children = append(n.Children[:ci], n.Children[ci+1:]...)
		} else {
			n.Children[ci].Box = childMBR
		}
		n.Stamp = t.modSeq
		if err := t.write(n); err != nil {
			return false, nil, err
		}
		return true, n.MBR(t.cfg.Dims), nil
	}
	return false, n.MBR(t.cfg.Dims), nil
}

// reinsertEntry adds a leaf entry back without bumping size (it was never
// decremented for orphans) or re-quantizing.
func (t *Tree) reinsertEntry(e LeafEntry) error {
	if t.root == pager.InvalidPage {
		rootNode, err := t.alloc(0)
		if err != nil {
			return err
		}
		rootNode.Entries = []LeafEntry{e}
		if err := t.write(rootNode); err != nil {
			return err
		}
		t.root = rootNode.ID
		t.height = 1
		return nil
	}
	res, err := t.insertEntry(t.root, e)
	if err != nil {
		return err
	}
	if res.sibling != nil {
		t.heightGrew(res)
	}
	return nil
}

// reinsertSubtree grafts an orphaned subtree back at its original level.
func (t *Tree) reinsertSubtree(ch Child, level int) error {
	if t.root == pager.InvalidPage || t.height-1 < level+1 {
		// The tree shrank below the subtree's height: make the subtree a
		// child of a new root chain. Simplest sound option: grow a root
		// that holds the current root (if any) and the subtree.
		if t.root == pager.InvalidPage {
			t.root = ch.ID
			t.height = level + 1
			return nil
		}
		// Raise the current tree until it can adopt the subtree.
		for t.height-1 < level+1 {
			newRoot, err := t.alloc(t.height)
			if err != nil {
				return err
			}
			rn, err := t.load(t.root, nil)
			if err != nil {
				return err
			}
			newRoot.Children = []Child{{Box: rn.MBR(t.cfg.Dims), ID: t.root}}
			if err := t.write(newRoot); err != nil {
				return err
			}
			t.root = newRoot.ID
			t.height++
		}
	}
	res, err := t.insertChildAt(t.root, t.height-1, ch, level)
	if err != nil {
		return err
	}
	if res.sibling != nil {
		t.heightGrew(res)
	}
	return nil
}

// insertChildAt descends to the node at targetLevel+1 and adds the child
// entry there, splitting on overflow like a normal insertion.
func (t *Tree) insertChildAt(page pager.PageID, level int, ch Child, targetLevel int) (insertResult, error) {
	n, err := t.load(page, nil)
	if err != nil {
		return insertResult{}, err
	}
	n.Stamp = t.modSeq
	if level == targetLevel+1 {
		n.Children = append(n.Children, ch)
		if len(n.Children) <= t.cfg.MaxInternalEntries() {
			if err := t.write(n); err != nil {
				return insertResult{}, err
			}
			return insertResult{mbr: n.MBR(t.cfg.Dims)}, nil
		}
		return t.splitInternal(n, len(n.Children)-1)
	}
	ci := chooseChild(n.Children, ch.Box)
	res, err := t.insertChildAt(n.Children[ci].ID, level-1, ch, targetLevel)
	if err != nil {
		return insertResult{}, err
	}
	return t.absorbChildResult(n, ci, res)
}
