package rtree

import (
	"fmt"

	"dynq/internal/geom"
	"dynq/internal/pager"
)

// Insert adds one motion segment for an object. Coordinates are quantized
// to the on-disk float32 precision first. Registered update listeners are
// notified per Section 4.1's update management: with the lone segment when
// an existing leaf absorbed it, or with the top-most newly created node
// when splits occurred (all new nodes are forced onto the insertion path,
// so that single node covers every new node and the new segment).
func (t *Tree) Insert(id ObjectID, seg geom.Segment) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(seg.Start) != t.cfg.Dims || len(seg.End) != t.cfg.Dims {
		return fmt.Errorf("rtree: segment has %d dims, tree has %d", len(seg.Start), t.cfg.Dims)
	}
	if seg.T.Empty() {
		return fmt.Errorf("rtree: segment has empty validity interval")
	}
	e := LeafEntry{ID: id, Seg: QuantizeSegment(seg)}
	t.modSeq++

	if t.root == pager.InvalidPage {
		rootNode, err := t.alloc(0)
		if err != nil {
			return err
		}
		rootNode.Entries = []LeafEntry{e}
		if err := t.write(rootNode); err != nil {
			return err
		}
		t.root = rootNode.ID
		t.height = 1
		t.size = 1
		t.notify(Update{Kind: UpdateEntry, Entry: e})
		return nil
	}

	res, err := t.insertEntry(t.root, e)
	if err != nil {
		return err
	}
	t.size++

	switch {
	case res.sibling != nil:
		// The split chain reached the root: grow the tree. The root's new
		// sibling is the top new node; heightGrew sends the notification.
		t.heightGrew(res)
	case !res.notified:
		// No structural change anywhere: announce just the new segment.
		t.notify(Update{Kind: UpdateEntry, Entry: e})
	}
	return nil
}

// insertResult reports the outcome of inserting into a subtree: the
// subtree root's updated MBR; if the subtree root split, the new sibling
// (already persisted) with its MBR; and whether an update notification was
// already emitted deeper in the recursion.
type insertResult struct {
	mbr        geom.Box
	sibling    *Node
	siblingMBR geom.Box
	notified   bool
}

// heightGrew grows the tree by one level after the old root split,
// sending the root-split notification. res.sibling is the old root's new
// sibling; running sessions that already explored the old root only miss
// nodes under the sibling, so notifying it (with RootSplit set, letting
// sessions opt to rebuild per Section 4.1) keeps their queues complete.
func (t *Tree) heightGrew(res insertResult) {
	newRoot, err := t.alloc(res.sibling.Level + 1)
	if err != nil {
		// Allocation failure at this point would strand the sibling; the
		// store is memory- or file-backed and allocation failures are
		// programming errors in practice.
		panic(fmt.Sprintf("rtree: root grow allocation failed: %v", err))
	}
	newRoot.Children = []Child{
		{Box: res.mbr, ID: t.root},
		{Box: res.siblingMBR, ID: res.sibling.ID},
	}
	if err := t.write(newRoot); err != nil {
		panic(fmt.Sprintf("rtree: root grow write failed: %v", err))
	}
	t.root = newRoot.ID
	t.height++
	t.notify(Update{
		Kind:      UpdateSubtree,
		Node:      res.sibling.ID,
		Level:     res.sibling.Level,
		Box:       res.siblingMBR,
		RootSplit: true,
	})
}

func (t *Tree) notify(u Update) {
	for _, fn := range t.listeners {
		fn(u)
	}
}

// insertEntry descends to the leaf level and inserts e, splitting on
// overflow. The caller holds the tree lock.
func (t *Tree) insertEntry(page pager.PageID, e LeafEntry) (insertResult, error) {
	n, err := t.load(page, nil)
	if err != nil {
		return insertResult{}, err
	}
	n.Stamp = t.modSeq

	if n.Leaf() {
		n.Entries = append(n.Entries, e)
		if len(n.Entries) <= t.cfg.MaxLeafEntries() {
			if err := t.write(n); err != nil {
				return insertResult{}, err
			}
			return insertResult{mbr: n.MBR(t.cfg.Dims)}, nil
		}
		return t.splitLeaf(n, len(n.Entries)-1)
	}

	eBox := e.Box(t.cfg.Dims)
	ci := chooseChild(n.Children, eBox)
	res, err := t.insertEntry(n.Children[ci].ID, e)
	if err != nil {
		return insertResult{}, err
	}
	return t.absorbChildResult(n, ci, res)
}

// absorbChildResult updates child ci's box after a lower-level insertion
// and, if the child split, adds the new sibling entry (splitting this node
// in turn on overflow).
func (t *Tree) absorbChildResult(n *Node, ci int, res insertResult) (insertResult, error) {
	n.Children[ci].Box = res.mbr
	if res.sibling == nil {
		if err := t.write(n); err != nil {
			return insertResult{}, err
		}
		return insertResult{mbr: n.MBR(t.cfg.Dims), notified: res.notified}, nil
	}
	n.Children = append(n.Children, Child{Box: res.siblingMBR, ID: res.sibling.ID})
	if len(n.Children) <= t.cfg.MaxInternalEntries() {
		if err := t.write(n); err != nil {
			return insertResult{}, err
		}
		// The split chain stops here: the child's sibling is the top-most
		// newly created node, covering every other new node and the
		// inserted segment (all were forced onto the insertion path).
		t.notify(Update{
			Kind:  UpdateSubtree,
			Node:  res.sibling.ID,
			Level: res.sibling.Level,
			Box:   res.siblingMBR,
		})
		return insertResult{mbr: n.MBR(t.cfg.Dims), notified: true}, nil
	}
	return t.splitInternal(n, len(n.Children)-1)
}

// splitLeaf splits an over-full leaf. newIdx is the index of the entry
// whose insertion caused the overflow: it is forced into the *new* node so
// that all nodes created by one insertion nest along the insertion path
// (Section 4.1's update management requires this).
func (t *Tree) splitLeaf(n *Node, newIdx int) (insertResult, error) {
	boxes := make([]geom.Box, len(n.Entries))
	for i, e := range n.Entries {
		boxes[i] = e.Box(t.cfg.Dims)
	}
	ga, gb := splitGroups(t.cfg.Split, boxes, t.cfg.minLeafEntries())
	ga, gb = forceNewInB(ga, gb, newIdx)

	sib, err := t.alloc(0)
	if err != nil {
		return insertResult{}, err
	}
	oldEntries := n.Entries
	n.Entries = pickLeafEntries(oldEntries, ga)
	sib.Entries = pickLeafEntries(oldEntries, gb)
	sib.Stamp = t.modSeq
	if err := t.write(n); err != nil {
		return insertResult{}, err
	}
	if err := t.write(sib); err != nil {
		return insertResult{}, err
	}
	return insertResult{
		mbr:        n.MBR(t.cfg.Dims),
		sibling:    sib,
		siblingMBR: sib.MBR(t.cfg.Dims),
	}, nil
}

// splitInternal splits an over-full internal node; newIdx is the index of
// the child entry that caused the overflow (forced into the new node, as
// in splitLeaf).
func (t *Tree) splitInternal(n *Node, newIdx int) (insertResult, error) {
	boxes := make([]geom.Box, len(n.Children))
	for i, c := range n.Children {
		boxes[i] = c.Box
	}
	ga, gb := splitGroups(t.cfg.Split, boxes, t.cfg.minInternalEntries())
	ga, gb = forceNewInB(ga, gb, newIdx)

	sib, err := t.alloc(n.Level)
	if err != nil {
		return insertResult{}, err
	}
	oldChildren := n.Children
	n.Children = pickChildren(oldChildren, ga)
	sib.Children = pickChildren(oldChildren, gb)
	sib.Stamp = t.modSeq
	if err := t.write(n); err != nil {
		return insertResult{}, err
	}
	if err := t.write(sib); err != nil {
		return insertResult{}, err
	}
	return insertResult{
		mbr:        n.MBR(t.cfg.Dims),
		sibling:    sib,
		siblingMBR: sib.MBR(t.cfg.Dims),
	}, nil
}

// forceNewInB swaps the two groups if the newly inserted index landed in
// group a, so the caller can always treat group b as the "new node" group.
// The split policies are symmetric in the two groups, so this costs
// nothing and does not alter the partition itself.
func forceNewInB(a, b []int, newIdx int) (ga, gb []int) {
	for _, i := range a {
		if i == newIdx {
			return b, a
		}
	}
	return a, b
}

func pickLeafEntries(src []LeafEntry, idx []int) []LeafEntry {
	out := make([]LeafEntry, len(idx))
	for k, i := range idx {
		out[k] = src[i]
	}
	return out
}

func pickChildren(src []Child, idx []int) []Child {
	out := make([]Child, len(idx))
	for k, i := range idx {
		out[k] = src[i]
	}
	return out
}

// chooseChild returns the index of the child whose box needs the least
// area enlargement to cover b (Guttman's ChooseLeaf heuristic), breaking
// ties by smaller area, then smaller margin, then lower index. The margin
// tiebreak matters in this domain: leaf-level boxes are often degenerate
// in one or more dimensions, making areas zero.
func chooseChild(children []Child, b geom.Box) int {
	best := 0
	bestEnl, bestArea, bestMargin := -1.0, 0.0, 0.0
	for i, c := range children {
		enl := c.Box.Enlargement(b)
		area := c.Box.Area()
		margin := c.Box.Margin()
		if i == 0 {
			bestEnl, bestArea, bestMargin = enl, area, margin
			continue
		}
		if enl < bestEnl ||
			(enl == bestEnl && area < bestArea) ||
			(enl == bestEnl && area == bestArea && margin < bestMargin) {
			best, bestEnl, bestArea, bestMargin = i, enl, area, margin
		}
	}
	return best
}
