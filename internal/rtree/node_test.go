package rtree

import (
	"math"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/pager"
)

func TestFanoutsMatchPaper(t *testing.T) {
	// Section 5: "Page size is 4KB ... Fanout is 145 and 127 for
	// internal- and leaf-level nodes respectively."
	cfg := DefaultConfig()
	if got := cfg.MaxInternalEntries(); got != 145 {
		t.Errorf("internal fanout = %d, want 145", got)
	}
	if got := cfg.MaxLeafEntries(); got != 127 {
		t.Errorf("leaf fanout = %d, want 127", got)
	}
	// The dual-temporal-axes layout trades fanout for NPDQ pruning power.
	dual := cfg
	dual.DualTime = true
	if got := dual.MaxInternalEntries(); got != 113 {
		t.Errorf("dual internal fanout = %d, want 113", got)
	}
	if got := dual.MaxLeafEntries(); got != 127 {
		t.Errorf("dual leaf fanout = %d, want 127 (leaf layout is unchanged)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dims: 0, MinFill: 0.4, BulkFill: 0.5},
		{Dims: 9, MinFill: 0.4, BulkFill: 0.5},
		{Dims: 2, MinFill: 0, BulkFill: 0.5},
		{Dims: 2, MinFill: 0.6, BulkFill: 0.5},
		{Dims: 2, MinFill: 0.4, BulkFill: 0},
		{Dims: 2, MinFill: 0.4, BulkFill: 1.5},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, pager.NewMemStore()); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := New(DefaultConfig(), pager.NewMemStore()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func mkEntry(id ObjectID, t0, t1, x0, y0, x1, y1 float64) LeafEntry {
	return LeafEntry{ID: id, Seg: geom.Segment{
		T:     geom.Interval{Lo: t0, Hi: t1},
		Start: geom.Point{x0, y0},
		End:   geom.Point{x1, y1},
	}}
}

func TestLeafNodeRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	n := &Node{ID: 7, Level: 0, Stamp: 42}
	for i := 0; i < 5; i++ {
		f := float64(i)
		n.Entries = append(n.Entries, mkEntry(ObjectID(i), f, f+1, f*2, f*3, f*2+1, f*3+1))
	}
	buf := make([]byte, pager.PageSize)
	if err := encodeNode(cfg, n, buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeNode(cfg, 7, buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Level != 0 || got.Stamp != 42 || len(got.Entries) != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, e := range got.Entries {
		want := n.Entries[i]
		if e.ID != want.ID || e.Seg.T != want.Seg.T ||
			e.Seg.Start[0] != want.Seg.Start[0] || e.Seg.End[1] != want.Seg.End[1] {
			t.Errorf("entry %d mismatch: got %+v want %+v", i, e, want)
		}
	}
}

func TestInternalNodeRoundTripSingle(t *testing.T) {
	cfg := DefaultConfig()
	n := &Node{ID: 3, Level: 2, Stamp: 9}
	n.Children = []Child{
		{Box: geom.Box{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}, {Lo: 4, Hi: 4.5}, {Lo: 5, Hi: 6}}, ID: 11},
		{Box: geom.Box{{Lo: -1, Hi: 0}, {Lo: 0, Hi: 0}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}}, ID: 12},
	}
	buf := make([]byte, pager.PageSize)
	if err := encodeNode(cfg, n, buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeNode(cfg, 3, buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Level != 2 || len(got.Children) != 2 || got.Children[0].ID != 11 {
		t.Fatalf("decoded %+v", got)
	}
	// Single layout preserves only the temporal hull: both temporal axes
	// decode to [min start, max end].
	b := got.Children[0].Box
	if b[2] != (geom.Interval{Lo: 4, Hi: 6}) || b[3] != (geom.Interval{Lo: 4, Hi: 6}) {
		t.Errorf("single-layout temporal axes = %v, %v; want hull [4,6]", b[2], b[3])
	}
	// Spatial extents survive exactly (values are f32-representable).
	if b[0] != (geom.Interval{Lo: 0, Hi: 1}) || b[1] != (geom.Interval{Lo: 2, Hi: 3}) {
		t.Errorf("spatial extents = %v", b[:2])
	}
}

func TestInternalNodeRoundTripDual(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DualTime = true
	n := &Node{ID: 3, Level: 1}
	n.Children = []Child{{Box: geom.Box{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}, {Lo: 4, Hi: 4.5}, {Lo: 5, Hi: 6}}, ID: 11}}
	buf := make([]byte, pager.PageSize)
	if err := encodeNode(cfg, n, buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeNode(cfg, 3, buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b := got.Children[0].Box
	if b[2] != (geom.Interval{Lo: 4, Hi: 4.5}) || b[3] != (geom.Interval{Lo: 5, Hi: 6}) {
		t.Errorf("dual temporal axes = %v, %v", b[2], b[3])
	}
}

func TestDecodeRejectsLayoutMismatch(t *testing.T) {
	single := DefaultConfig()
	dual := single
	dual.DualTime = true
	n := &Node{ID: 1, Level: 1, Children: []Child{{Box: geom.NewBox(4).Cover(geom.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}), ID: 2}}}
	buf := make([]byte, pager.PageSize)
	if err := encodeNode(single, n, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeNode(dual, 1, buf); err == nil {
		t.Error("decoding a single-layout page with a dual config should fail")
	}
}

func TestEncodeRejectsOverfullNode(t *testing.T) {
	cfg := DefaultConfig()
	n := &Node{ID: 1, Level: 0}
	for i := 0; i <= cfg.MaxLeafEntries(); i++ {
		n.Entries = append(n.Entries, mkEntry(ObjectID(i), 0, 1, 0, 0, 1, 1))
	}
	buf := make([]byte, pager.PageSize)
	if err := encodeNode(cfg, n, buf); err == nil {
		t.Error("over-full node should not encode")
	}
}

func TestEncodeOutwardRounding(t *testing.T) {
	// Box bounds that are not float32-representable must round outward.
	cfg := DefaultConfig()
	box := geom.Box{{Lo: 0.1, Hi: 0.2}, {Lo: 0.3, Hi: 0.7}, {Lo: 1.1, Hi: 1.3}, {Lo: 2.1, Hi: 2.7}}
	n := &Node{ID: 1, Level: 1, Children: []Child{{Box: box, ID: 5}}}
	buf := make([]byte, pager.PageSize)
	if err := encodeNode(cfg, n, buf); err != nil {
		t.Fatal(err)
	}
	got, err := decodeNode(cfg, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Children[0].Box.Contains(box) {
		t.Errorf("decoded box %v does not contain original %v", got.Children[0].Box, box)
	}
}

func TestQuantizeSegment(t *testing.T) {
	s := geom.Segment{
		T:     geom.Interval{Lo: 0.1, Hi: 0.2},
		Start: geom.Point{0.3, 0.7},
		End:   geom.Point{1.1, 1.3},
	}
	q := QuantizeSegment(s)
	if q.T.Lo != float64(float32(0.1)) || q.Start[1] != float64(float32(0.7)) {
		t.Error("quantization should round each coordinate to float32")
	}
	// Idempotent.
	if q2 := QuantizeSegment(q); q2.T != q.T || q2.Start[0] != q.Start[0] {
		t.Error("quantization must be idempotent")
	}
}

func TestQueryBoxAndTimeHull(t *testing.T) {
	q := QueryBox(geom.Box{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}, geom.Interval{Lo: 3, Hi: 4})
	if len(q) != 4 {
		t.Fatalf("query box dims = %d", len(q))
	}
	// Segment alive during [3,4] ⇔ starts ≤ 4 and ends ≥ 3.
	alive := geom.Box{{Lo: 1, Hi: 1}, {Lo: 1, Hi: 1}, {Lo: 2, Hi: 2}, {Lo: 10, Hi: 10}} // segment [2,10] at (1,1)
	if !q.Overlaps(alive) {
		t.Error("live segment should overlap query box")
	}
	dead := geom.Box{{Lo: 1, Hi: 1}, {Lo: 1, Hi: 1}, {Lo: 5, Hi: 5}, {Lo: 10, Hi: 10}} // starts after window
	if q.Overlaps(dead) {
		t.Error("segment starting after the window should not overlap")
	}
	if !math.IsInf(q[2].Lo, -1) || !math.IsInf(q[3].Hi, 1) {
		t.Error("query temporal axes should be half-open")
	}
	if TimeHull(alive) != (geom.Interval{Lo: 2, Hi: 10}) {
		t.Errorf("time hull = %v", TimeHull(alive))
	}
}
