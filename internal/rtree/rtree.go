// Package rtree implements the disk-based R-tree used for Native Space
// Indexing (NSI) of mobile-object motion (Section 3.2 of the paper).
//
// Each motion update of an object contributes one linear motion segment.
// Internal nodes store the space-time bounding boxes of their subtrees as
// float32 extents (yielding the paper's fanouts: 145 internal / 127 leaf
// entries per 4 KiB page for d=2). Leaf nodes store the exact segment end
// points rather than bounding boxes, enabling the exact leaf-level
// intersection test of [13,14,15] that avoids false admissions.
//
// Internally every box carries *dual* temporal axes — separate ranges for
// segment start times and end times (Figure 5(b)) — since the dual box
// determines the single-axis (union) interval but not vice versa. The
// on-disk layout is configurable: the single-axis layout matches the
// paper's PDQ experiments; the dual layout is required for NPDQ
// discardability to have any pruning power.
//
// The tree supports the paper's two update-management hooks: every node
// carries a modification stamp (NPDQ, Section 4.2), and every insertion
// reports the lowest common ancestor of all newly created nodes so that
// running predictive queries can extend their priority queues (PDQ,
// Section 4.1, Figure 4). Newly created split nodes are forced onto the
// insertion path to make that ancestor well defined.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/stats"
)

// ObjectID identifies a mobile object. One object contributes many
// segments (one per motion update).
type ObjectID uint64

// SplitPolicy selects the node splitting algorithm.
type SplitPolicy int

// Available split policies.
const (
	SplitQuadratic SplitPolicy = iota // Guttman's quadratic split (default)
	SplitLinear                       // Guttman's linear split
	SplitRStarAxis                    // R*-style axis/distribution choice
)

func (p SplitPolicy) String() string {
	switch p {
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	case SplitRStarAxis:
		return "rstar"
	default:
		return fmt.Sprintf("SplitPolicy(%d)", int(p))
	}
}

// Config fixes the shape of a tree. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Dims is the number of spatial dimensions d (2 in the paper).
	Dims int
	// DualTime selects the dual-temporal-axes on-disk layout for internal
	// entries (needed by NPDQ discardability, Figure 5(b)). It reduces
	// internal fanout (113 vs 145 at d=2).
	DualTime bool
	// Split selects the overflow splitting policy.
	Split SplitPolicy
	// MinFill is the minimum node occupancy as a fraction of the maximum
	// (Guttman's m/M). Splits and deletions maintain it.
	MinFill float64
	// BulkFill is the target occupancy for bulk loading (the paper's
	// "0.5 fill factor").
	BulkFill float64
}

// DefaultConfig returns the configuration of the paper's experiments:
// 2 spatial dimensions, quadratic split, 0.4 minimum fill, 0.5 bulk fill.
func DefaultConfig() Config {
	return Config{Dims: 2, Split: SplitQuadratic, MinFill: 0.4, BulkFill: 0.5}
}

func (c Config) validate() error {
	if c.Dims < 1 || c.Dims > 8 {
		return fmt.Errorf("rtree: Dims must be in [1,8], got %d", c.Dims)
	}
	if c.MinFill <= 0 || c.MinFill > 0.5 {
		return fmt.Errorf("rtree: MinFill must be in (0,0.5], got %g", c.MinFill)
	}
	if c.BulkFill <= 0 || c.BulkFill > 1 {
		return fmt.Errorf("rtree: BulkFill must be in (0,1], got %g", c.BulkFill)
	}
	return nil
}

// boxDims returns the dimensionality of in-memory boxes: d spatial extents
// followed by a start-time extent and an end-time extent.
func (c Config) boxDims() int { return c.Dims + 2 }

// MaxLeafEntries returns the leaf fanout implied by the page size.
func (c Config) MaxLeafEntries() int {
	return (pager.PageSize - nodeHeaderSize) / c.leafEntrySize()
}

// MaxInternalEntries returns the internal fanout implied by the page size
// and temporal layout.
func (c Config) MaxInternalEntries() int {
	return (pager.PageSize - nodeHeaderSize) / c.internalEntrySize()
}

func (c Config) leafEntrySize() int {
	// object id + start point + end point + [t_l, t_h], all coordinates f32.
	return 8 + (2*c.Dims+2)*4
}

func (c Config) internalEntrySize() int {
	n := 2*c.Dims + 2 // spatial extents + single time extent
	if c.DualTime {
		n += 2 // separate start-time and end-time extents
	}
	return n*4 + 4 // f32 bounds + child page id
}

func (c Config) minLeafEntries() int {
	m := int(math.Floor(float64(c.MaxLeafEntries()) * c.MinFill))
	if m < 1 {
		m = 1
	}
	return m
}

func (c Config) minInternalEntries() int {
	m := int(math.Floor(float64(c.MaxInternalEntries()) * c.MinFill))
	if m < 2 {
		m = 2
	}
	return m
}

// LeafEntry is an indexed motion segment: the exact end-point
// representation kept at the leaf level.
type LeafEntry struct {
	ID  ObjectID
	Seg geom.Segment
}

// Box returns the segment's box in the tree's dual space-time key space:
// d spatial extents, then the degenerate start-time and end-time extents.
func (e LeafEntry) Box(dims int) geom.Box {
	b := make(geom.Box, dims+2)
	for i := 0; i < dims; i++ {
		lo, hi := e.Seg.Start[i], e.Seg.End[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		b[i] = geom.Interval{Lo: lo, Hi: hi}
	}
	b[dims] = geom.IntervalOf(e.Seg.T.Lo)
	b[dims+1] = geom.IntervalOf(e.Seg.T.Hi)
	return b
}

// Child is an internal-node entry: a subtree bounding box in dual space
// and the page holding the subtree root.
type Child struct {
	Box geom.Box
	ID  pager.PageID
}

// Node is the decoded form of one tree page.
type Node struct {
	ID    pager.PageID
	Level int    // 0 = leaf
	Stamp uint64 // modification sequence number at last write

	Children []Child     // populated iff Level > 0
	Entries  []LeafEntry // populated iff Level == 0
}

// Leaf reports whether the node is at the leaf level.
func (n *Node) Leaf() bool { return n.Level == 0 }

// Len returns the number of entries (children or segments).
func (n *Node) Len() int {
	if n.Leaf() {
		return len(n.Entries)
	}
	return len(n.Children)
}

// MBR returns the minimum bounding box (dual space) of the node's
// entries; empty for an empty node.
func (n *Node) MBR(dims int) geom.Box {
	mbr := geom.NewBox(dims + 2)
	if n.Leaf() {
		for _, e := range n.Entries {
			mbr.CoverInPlace(e.Box(dims))
		}
	} else {
		for _, c := range n.Children {
			mbr.CoverInPlace(c.Box)
		}
	}
	return mbr
}

// UpdateKind distinguishes the two shapes of PDQ update notifications.
type UpdateKind int

// Notification kinds.
const (
	// UpdateEntry reports a single inserted segment (no structural
	// change to the tree: some existing leaf absorbed it).
	UpdateEntry UpdateKind = iota
	// UpdateSubtree reports the top-most newly created node. Everything
	// new — including the inserted segment — lies beneath it.
	UpdateSubtree
)

// Update describes one insertion to a running dynamic query (Section 4.1,
// Figure 4). Either Entry is meaningful (UpdateEntry) or Node/Level/Box
// are (UpdateSubtree). RootSplit additionally signals that the tree grew a
// new root, which sessions may use to decide to rebuild their queues.
type Update struct {
	Kind      UpdateKind
	Entry     LeafEntry
	Node      pager.PageID
	Level     int
	Box       geom.Box
	RootSplit bool
}

// Tree is a disk-based R-tree. All exported methods are safe for
// concurrent use: read operations (searches, node loads, accessors) hold
// a shared lock and run in parallel against the lock-sharded buffer
// pool, while structural operations (Insert, Delete, bulk load) hold the
// exclusive lock.
type Tree struct {
	mu       sync.RWMutex
	cfg      Config
	pool     *pager.BufferPool
	storeRef pager.Store

	root   pager.PageID
	height int // number of levels; 0 for an empty tree
	size   int // number of indexed segments

	modSeq      uint64
	listeners   map[uint64]func(Update)
	listenerSeq uint64

	scratch []byte // page-sized encode buffer

	// mc, when set, is charged for index maintenance costs (page
	// writes) that have no per-query counter to bill to. Nil-safe.
	mc *stats.Counters
}

// New creates an empty tree over store. A nil pool option means direct
// store access (every node load is a disk access, the paper's setting).
func New(cfg Config, store pager.Store) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:       cfg,
		pool:      pager.NewBufferPool(store, 0),
		storeRef:  store,
		root:      pager.InvalidPage,
		scratch:   make([]byte, pager.PageSize),
		listeners: make(map[uint64]func(Update)),
	}
	return t, nil
}

// NewBuffered creates an empty tree whose node loads go through an LRU
// buffer pool of the given page capacity (used by the server-side
// buffering ablation).
func NewBuffered(cfg Config, store pager.Store, bufferPages int) (*Tree, error) {
	t, err := New(cfg, store)
	if err != nil {
		return nil, err
	}
	t.pool = pager.NewBufferPool(store, bufferPages)
	return t, nil
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// SetCounters attaches the counters charged for index maintenance (page
// writes). Query-time costs keep flowing to the per-call counters.
func (t *Tree) SetCounters(c *stats.Counters) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mc = c
}

// Pool exposes the tree's buffer pool (for ablation accounting and cache
// invalidation between queries).
func (t *Tree) Pool() *pager.BufferPool { return t.pool }

// UseBuffer replaces the tree's buffer pool with an LRU pool of the given
// page capacity, flushing any dirty frames first.
func (t *Tree) UseBuffer(pages int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.pool.Flush(); err != nil {
		return err
	}
	// The pool wraps the same store the current one does; reconstruct it
	// through the store captured at creation time.
	t.pool = pager.NewBufferPool(t.storeRef, pages)
	return nil
}

// Size returns the number of indexed segments.
func (t *Tree) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Height returns the number of levels (0 when empty, 1 for a single leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// ModSeq returns the current modification sequence number. Queries record
// it to later decide whether a node changed since they last ran (NPDQ
// update management).
func (t *Tree) ModSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.modSeq
}

// Root returns the root page and its level; ok is false for an empty
// tree.
func (t *Tree) Root() (id pager.PageID, level int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == pager.InvalidPage {
		return pager.InvalidPage, 0, false
	}
	return t.root, t.height - 1, true
}

// OnUpdate registers a listener invoked (synchronously, under the tree
// lock) for every insertion. Running PDQ sessions use it to keep their
// priority queues complete under concurrent updates. The returned
// function unregisters the listener; listeners must not call back into
// the tree.
func (t *Tree) OnUpdate(fn func(Update)) (unsubscribe func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listenerSeq++
	id := t.listenerSeq
	t.listeners[id] = fn
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		delete(t.listeners, id)
	}
}

// Load reads and decodes a node, charging one disk access to c (split by
// leaf/internal level, the paper's I/O metric).
func (t *Tree) Load(id pager.PageID, c *stats.Counters) (*Node, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.load(id, c)
}

func (t *Tree) load(id pager.PageID, c *stats.Counters) (*Node, error) {
	buf, hit, err := t.pool.GetHit(id)
	if err != nil {
		return nil, fmt.Errorf("rtree: load page %d: %w", id, err)
	}
	n, err := decodeNode(t.cfg, id, buf)
	if err != nil {
		return nil, err
	}
	// The paper's I/O metric counts every node fetch; the buffer-hit
	// counter additionally records which of those the pool absorbed. The
	// pool reports the hit per call, since global counter deltas are
	// meaningless with concurrent readers.
	if hit {
		c.AddBufferHit()
	}
	c.AddRead(n.Leaf())
	return n, nil
}

func (t *Tree) write(n *Node) error {
	if err := encodeNode(t.cfg, n, t.scratch); err != nil {
		return err
	}
	t.mc.AddPageWrite()
	return t.pool.Put(n.ID, t.scratch)
}

func (t *Tree) alloc(level int) (*Node, error) {
	id, err := t.pool.Alloc()
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, Level: level, Stamp: t.modSeq}, nil
}

// QueryBox maps a snapshot query — a spatial range and a time interval —
// into the tree's dual key space: a segment matches the box filter iff its
// spatial extents overlap the range, its start time is ≤ the query's end,
// and its end time is ≥ the query's start.
func QueryBox(spatial geom.Box, tw geom.Interval) geom.Box {
	d := len(spatial)
	q := make(geom.Box, d+2)
	copy(q, spatial)
	q[d] = geom.Interval{Lo: math.Inf(-1), Hi: tw.Hi}  // start-time axis
	q[d+1] = geom.Interval{Lo: tw.Lo, Hi: math.Inf(1)} // end-time axis
	return q
}

// TimeHull returns the single-axis validity interval [min start, max end]
// of a dual-space box.
func TimeHull(b geom.Box) geom.Interval {
	d := len(b) - 2
	return geom.Interval{Lo: b[d].Lo, Hi: b[d+1].Hi}
}

// ErrNotFound is returned by Delete when no matching segment exists.
var ErrNotFound = errors.New("rtree: entry not found")
