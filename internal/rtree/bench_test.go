package rtree

import (
	"math/rand"
	"testing"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/stats"
)

func benchEntries(n int, seed int64) []LeafEntry {
	r := rand.New(rand.NewSource(seed))
	entries := make([]LeafEntry, n)
	for i := range entries {
		entries[i] = LeafEntry{ID: ObjectID(i), Seg: randSegment(r)}
	}
	return entries
}

func BenchmarkInsert(b *testing.B) {
	entries := benchEntries(b.N, 1)
	tree, err := New(DefaultConfig(), pager.NewMemStore())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(entries[i].ID, entries[i].Seg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	entries := benchEntries(100000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(entries)), "segments")
}

func BenchmarkRangeSearch(b *testing.B) {
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), benchEntries(100000, 3))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	var c stats.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo0, lo1 := r.Float64()*90, r.Float64()*90
		start := r.Float64() * 99
		_, err := tree.RangeSearch(
			geom.Box{{Lo: lo0, Hi: lo0 + 8}, {Lo: lo1, Hi: lo1 + 8}},
			geom.Interval{Lo: start, Hi: start + 0.5},
			SearchOptions{}, &c)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Snapshot().Reads())/float64(b.N), "reads/query")
}

func BenchmarkNodeEncodeDecode(b *testing.B) {
	cfg := DefaultConfig()
	n := &Node{ID: 1, Level: 0, Stamp: 7}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < cfg.MaxLeafEntries(); i++ {
		n.Entries = append(n.Entries, LeafEntry{ID: ObjectID(i), Seg: randSegment(r)})
	}
	buf := make([]byte, pager.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := encodeNode(cfg, n, buf); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeNode(cfg, 1, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	entries := benchEntries(b.N, 6)
	tree, err := BulkLoad(DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i]
		if err := tree.Delete(e.ID, float64(float32(e.Seg.T.Lo))); err != nil {
			b.Fatal(err)
		}
	}
}
