package rtree

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/pager"
)

// decodeNode must never panic on corrupted page bytes: it either returns
// an error or a structurally plausible node (counts within fanout). The
// harness feeds random mutations of a valid page and fully random pages.
func TestDecodeNodeNeverPanics(t *testing.T) {
	cfg := DefaultConfig()
	// A valid page to mutate.
	valid := make([]byte, pager.PageSize)
	r := rand.New(rand.NewSource(1))
	n := &Node{ID: 1, Level: 0, Stamp: 5}
	for i := 0; i < 40; i++ {
		n.Entries = append(n.Entries, LeafEntry{ID: ObjectID(i), Seg: randSegment(r)})
	}
	if err := encodeNode(cfg, n, valid); err != nil {
		t.Fatal(err)
	}

	check := func(buf []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("decodeNode panicked")
			}
		}()
		node, err := decodeNode(cfg, 1, buf)
		if err != nil {
			return true
		}
		if node.Leaf() {
			return len(node.Entries) <= cfg.MaxLeafEntries()
		}
		return len(node.Children) <= cfg.MaxInternalEntries()
	}

	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		buf := make([]byte, pager.PageSize)
		switch rr.Intn(3) {
		case 0: // random mutations of the valid page
			copy(buf, valid)
			for k := 0; k < 1+rr.Intn(16); k++ {
				buf[rr.Intn(len(buf))] = byte(rr.Intn(256))
			}
		case 1: // fully random bytes (respecting the layout flag byte)
			rr.Read(buf)
			buf[1] = 0 // single-time layout so the config matches
		case 2: // plausible header, garbage body
			buf[0] = byte(rr.Intn(4))
			buf[1] = 0
			binary.LittleEndian.PutUint16(buf[2:], uint16(rr.Intn(1<<16)))
			rr.Read(buf[16:])
		}
		return check(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// A count field larger than the page can hold must be rejected, not read
// out of bounds.
func TestDecodeNodeRejectsOversizedCount(t *testing.T) {
	cfg := DefaultConfig()
	buf := make([]byte, pager.PageSize)
	buf[0] = 0 // leaf
	binary.LittleEndian.PutUint16(buf[2:], 60000)
	if _, err := decodeNode(cfg, 1, buf); err == nil {
		t.Error("oversized leaf count should be rejected")
	}
	buf[0] = 1 // internal
	binary.LittleEndian.PutUint16(buf[2:], 60000)
	if _, err := decodeNode(cfg, 1, buf); err == nil {
		t.Error("oversized internal count should be rejected")
	}
	// Short buffer.
	if _, err := decodeNode(cfg, 1, buf[:100]); err == nil {
		t.Error("short buffer should be rejected")
	}
}
