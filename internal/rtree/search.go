package rtree

import (
	"context"
	"fmt"

	"dynq/internal/geom"
	"dynq/internal/pager"
	"dynq/internal/stats"
)

// Match is one segment returned by a range search: the object, its exact
// segment, and the time interval during which the segment actually lies
// inside the query's spatial range (clipped to the query's time window).
type Match struct {
	ID      ObjectID
	Seg     geom.Segment
	Overlap geom.Interval
}

// SearchOptions tune a range search.
type SearchOptions struct {
	// BBOnlyLeaf disables the exact leaf-level segment test and matches on
	// segment bounding boxes instead, re-admitting the false positives the
	// NSI leaf optimization eliminates. Ablation only.
	BBOnlyLeaf bool
	// Limit, when positive, stops the traversal as soon as that many
	// matches have been collected. Which matches survive depends on the
	// traversal order and is unspecified beyond being deterministic for an
	// unchanged tree.
	Limit int
}

// RangeSearch answers a snapshot query (Definition 3): all segments whose
// trajectory passes through the spatial box during the time window. One
// disk access is charged per node visited and one distance computation per
// child entry examined, the paper's cost accounting.
func (t *Tree) RangeSearch(spatial geom.Box, tw geom.Interval, opts SearchOptions, c *stats.Counters) ([]Match, error) {
	return t.RangeSearchCtx(context.Background(), spatial, tw, opts, c)
}

// RangeSearchCtx is RangeSearch with cooperative cancellation: the context
// is checked once per node visited, so a cancelled or expired query stops
// within one page fetch and returns the context's error.
func (t *Tree) RangeSearchCtx(ctx context.Context, spatial geom.Box, tw geom.Interval, opts SearchOptions, c *stats.Counters) ([]Match, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(spatial) != t.cfg.Dims {
		return nil, fmt.Errorf("rtree: query has %d dims, tree has %d", len(spatial), t.cfg.Dims)
	}
	if t.root == pager.InvalidPage {
		return nil, nil
	}
	q := QueryBox(spatial, tw)
	qst := geom.Box(append(geom.Box{}, spatial...))
	qst = append(qst, tw) // spatial extents + single time extent, for the exact test
	var out []Match
	err := t.searchNode(ctx, t.root, q, qst, opts, c, &out)
	if err != nil {
		return nil, err
	}
	c.AddResults(len(out))
	return out, nil
}

// full reports whether the match set has reached the search limit.
func (opts SearchOptions) full(out []Match) bool {
	return opts.Limit > 0 && len(out) >= opts.Limit
}

func (t *Tree) searchNode(ctx context.Context, id pager.PageID, q, qst geom.Box, opts SearchOptions, c *stats.Counters, out *[]Match) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, err := t.load(id, c)
	if err != nil {
		return err
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			if opts.full(*out) {
				return nil
			}
			c.AddDistanceComps(1)
			if opts.BBOnlyLeaf {
				if e.Box(t.cfg.Dims).Overlaps(q) {
					ov := e.Seg.T.Intersect(qst[t.cfg.Dims])
					*out = append(*out, Match{ID: e.ID, Seg: e.Seg, Overlap: ov})
				}
				continue
			}
			if ov := e.Seg.OverlapTimeInBox(qst); !ov.Empty() {
				*out = append(*out, Match{ID: e.ID, Seg: e.Seg, Overlap: ov})
			}
		}
		return nil
	}
	for _, ch := range n.Children {
		if opts.full(*out) {
			return nil
		}
		c.AddDistanceComps(1)
		if ch.Box.Overlaps(q) {
			if err := t.searchNode(ctx, ch.ID, q, qst, opts, c, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// TreeStats summarizes the physical shape of the tree, mirroring the
// figures the paper reports for its index (Section 5: fanout 145/127,
// height 3).
type TreeStats struct {
	Height        int
	Segments      int
	LeafNodes     int
	InternalNodes int
	AvgLeafFill   float64 // mean entries per leaf / max leaf entries
	AvgIntFill    float64
	MaxLeafFan    int
	MaxIntFan     int
}

// Stats walks the whole tree (not counted against any query counters).
func (t *Tree) Stats() (TreeStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TreeStats{
		Height:     t.height,
		Segments:   t.size,
		MaxLeafFan: t.cfg.MaxLeafEntries(),
		MaxIntFan:  t.cfg.MaxInternalEntries(),
	}
	if t.root == pager.InvalidPage {
		return st, nil
	}
	var leafEntries, intEntries int
	var walk func(id pager.PageID) error
	walk = func(id pager.PageID) error {
		n, err := t.load(id, nil)
		if err != nil {
			return err
		}
		if n.Leaf() {
			st.LeafNodes++
			leafEntries += len(n.Entries)
			return nil
		}
		st.InternalNodes++
		intEntries += len(n.Children)
		for _, ch := range n.Children {
			if err := walk(ch.ID); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return TreeStats{}, err
	}
	if st.LeafNodes > 0 {
		st.AvgLeafFill = float64(leafEntries) / float64(st.LeafNodes*st.MaxLeafFan)
	}
	if st.InternalNodes > 0 {
		st.AvgIntFill = float64(intEntries) / float64(st.InternalNodes*st.MaxIntFan)
	}
	return st, nil
}

// Validate checks the structural invariants of the tree and returns the
// first violation found (nil when sound): every child box contains its
// subtree's geometry, all leaves are at level 0 with uniform depth, entry
// counts respect the fanout, and the recorded size matches the number of
// stored segments. Intended for tests and the loader tool.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == pager.InvalidPage {
		if t.size != 0 || t.height != 0 {
			return fmt.Errorf("rtree: empty tree with size=%d height=%d", t.size, t.height)
		}
		return nil
	}
	segs := 0
	var walk func(id pager.PageID, wantLevel int, within geom.Box) error
	walk = func(id pager.PageID, wantLevel int, within geom.Box) error {
		n, err := t.load(id, nil)
		if err != nil {
			return err
		}
		if n.Level != wantLevel {
			return fmt.Errorf("rtree: node %d at level %d, expected %d", id, n.Level, wantLevel)
		}
		if n.Leaf() {
			if len(n.Entries) > t.cfg.MaxLeafEntries() {
				return fmt.Errorf("rtree: leaf %d over-full (%d)", id, len(n.Entries))
			}
			segs += len(n.Entries)
			if within != nil {
				for _, e := range n.Entries {
					if !within.Contains(e.Box(t.cfg.Dims)) {
						return fmt.Errorf("rtree: leaf %d entry %d escapes parent box %v", id, e.ID, within)
					}
				}
			}
			return nil
		}
		if len(n.Children) > t.cfg.MaxInternalEntries() {
			return fmt.Errorf("rtree: internal %d over-full (%d)", id, len(n.Children))
		}
		if len(n.Children) == 0 {
			return fmt.Errorf("rtree: internal %d is empty", id)
		}
		for _, ch := range n.Children {
			if within != nil && !within.Contains(ch.Box) {
				return fmt.Errorf("rtree: node %d child %d box escapes parent box", id, ch.ID)
			}
			if err := walk(ch.ID, wantLevel-1, ch.Box); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, nil); err != nil {
		return err
	}
	if segs != t.size {
		return fmt.Errorf("rtree: recorded size %d, found %d segments", t.size, segs)
	}
	return nil
}
