package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynq/internal/rtree"
)

func TestBuildIndexScaled(t *testing.T) {
	tree, n, err := BuildIndex(rtree.DefaultConfig(), 0.02, 1) // 100 objects
	if err != nil {
		t.Fatal(err)
	}
	if n < 8000 || n > 12000 {
		t.Errorf("segment count = %d, want ≈10000 (100 objects × ~100 updates)", n)
	}
	if tree.Size() != n {
		t.Errorf("tree size %d != generated %d", tree.Size(), n)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildIndex(rtree.DefaultConfig(), 0, 1); err == nil {
		t.Error("zero scale should be rejected")
	}
	if _, _, err := BuildIndex(rtree.DefaultConfig(), 1.5, 1); err == nil {
		t.Error("over-unity scale should be rejected")
	}
}

func TestQueryConfigDerived(t *testing.T) {
	q := PaperQuery(0.9, 8)
	if math.Abs(q.Step()-0.8) > 1e-12 {
		t.Errorf("step = %g, want 0.8", q.Step())
	}
	if math.Abs(q.Speed()-8) > 1e-9 {
		t.Errorf("speed = %g, want 8", q.Speed())
	}
	// The paper's example: 0% overlap with an 8×8 window means the window
	// advances a full width per frame.
	q0 := PaperQuery(0, 8)
	if q0.Step() != 8 {
		t.Errorf("0%% overlap step = %g", q0.Step())
	}
}

func TestGenerateValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	bad := []QueryConfig{
		{Range: 0, Overlap: 0.5, Frames: 10, WorldSize: 100, Duration: 100},
		{Range: 200, Overlap: 0.5, Frames: 10, WorldSize: 100, Duration: 100},
		{Range: 8, Overlap: -0.1, Frames: 10, WorldSize: 100, Duration: 100},
		{Range: 8, Overlap: 1.0, Frames: 10, WorldSize: 100, Duration: 100},
		{Range: 8, Overlap: 0.5, Frames: 0, WorldSize: 100, Duration: 100},
	}
	for _, q := range bad {
		if _, err := Generate(q, r); err == nil {
			t.Errorf("config %+v should be rejected", q)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	q := PaperQuery(0.5, 8)
	g, err := Generate(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Windows) != q.Frames+1 || len(g.Times) != q.Frames+1 {
		t.Fatalf("got %d windows/%d times, want %d", len(g.Windows), len(g.Times), q.Frames+1)
	}
	for i, w := range g.Windows {
		if math.Abs(w[0].Length()-8) > 1e-9 || math.Abs(w[1].Length()-8) > 1e-9 {
			t.Fatalf("window %d is %gx%g", i, w[0].Length(), w[1].Length())
		}
		if w[0].Lo < 0 || w[0].Hi > 100 || w[1].Lo < 0 || w[1].Hi > 100 {
			t.Fatalf("window %d leaves the world: %v", i, w)
		}
		if math.Abs(g.Times[i].Length()-FrameDt) > 1e-9 {
			t.Fatalf("frame %d duration = %g", i, g.Times[i].Length())
		}
		if i > 0 && math.Abs(g.Times[i].Lo-g.Times[i-1].Hi) > 1e-9 {
			t.Fatalf("frames %d-%d not contiguous", i-1, i)
		}
	}
	// The trajectory must cover every frame's time interval.
	span := g.Traj.TimeSpan()
	if span.Lo > g.Times[0].Lo || span.Hi < g.Times[len(g.Times)-1].Hi {
		t.Errorf("trajectory span %v does not cover frames [%g,%g]",
			span, g.Times[0].Lo, g.Times[len(g.Times)-1].Hi)
	}
}

// The central consistency requirement: the PDQ trajectory interpolates to
// exactly the per-frame windows that the naive/NPDQ evaluators use, so
// all three strategies answer the same dynamic query.
func TestGenerateTrajectoryMatchesWindows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := PaperQuery(Overlaps[r.Intn(len(Overlaps))], Ranges[r.Intn(len(Ranges))])
		g, err := Generate(q, r)
		if err != nil {
			return false
		}
		for i, w := range g.Windows {
			got := g.Traj.WindowAt(g.Times[i].Lo)
			for d := 0; d < 2; d++ {
				if math.Abs(got[d].Lo-w[d].Lo) > 1e-6 || math.Abs(got[d].Hi-w[d].Hi) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Consecutive windows overlap by exactly the configured fraction (before
// any border reflection, overlap is 1 - step/range along one axis).
func TestGenerateOverlapFraction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, ov := range Overlaps {
		q := PaperQuery(ov, 8)
		g, err := Generate(q, r)
		if err != nil {
			t.Fatal(err)
		}
		violations := 0
		for i := 1; i < len(g.Windows); i++ {
			inter := g.Windows[i].Intersect(g.Windows[i-1])
			frac := 0.0
			if !inter.Empty() {
				frac = inter.Area() / g.Windows[i].Area()
			}
			if math.Abs(frac-ov) > 1e-6 {
				violations++
			}
		}
		// Reflections at the border can change the instantaneous overlap
		// for one frame; they are rare.
		if violations > len(g.Windows)/10 {
			t.Errorf("overlap %g: %d/%d frames off target", ov, violations, len(g.Windows))
		}
	}
}

func TestPaperSweepConstants(t *testing.T) {
	if len(Overlaps) != 6 || Overlaps[0] != 0 || Overlaps[5] != 0.9999 {
		t.Errorf("overlap sweep = %v", Overlaps)
	}
	if len(Ranges) != 3 || Ranges[0] != 8 || Ranges[2] != 20 {
		t.Errorf("range sweep = %v", Ranges)
	}
	if FrameDt != 0.1 || SubsequentFrames != 50 {
		t.Error("frame constants drifted from the paper")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	q := PaperQuery(0.8, 14)
	a, err := Generate(q, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(q, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Windows {
		if !a.Windows[i].Equal(b.Windows[i]) {
			t.Fatalf("window %d differs between identical seeds", i)
		}
	}
}
