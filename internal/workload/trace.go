package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dynq/internal/geom"
	"dynq/internal/rtree"
)

// The trace format is one motion segment per CSV record:
//
//	id, t0, t1, x0, y0, ..., x1, y1, ...
//
// with d start coordinates followed by d end coordinates. It lets users
// load their own movement data through dqload -import, and exports the
// synthetic workloads for use by other tools.

// WriteTrace writes segments as CSV.
func WriteTrace(w io.Writer, dims int, segs []rtree.LeafEntry) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 3+2*dims)
	for _, e := range segs {
		if len(e.Seg.Start) != dims || len(e.Seg.End) != dims {
			return fmt.Errorf("workload: segment of object %d has wrong dimensionality", e.ID)
		}
		rec[0] = strconv.FormatUint(uint64(e.ID), 10)
		rec[1] = strconv.FormatFloat(e.Seg.T.Lo, 'g', -1, 64)
		rec[2] = strconv.FormatFloat(e.Seg.T.Hi, 'g', -1, 64)
		for i := 0; i < dims; i++ {
			rec[3+i] = strconv.FormatFloat(e.Seg.Start[i], 'g', -1, 64)
			rec[3+dims+i] = strconv.FormatFloat(e.Seg.End[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace of d-dimensional motion segments.
func ReadTrace(r io.Reader, dims int) ([]rtree.LeafEntry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3 + 2*dims
	var out []rtree.LeafEntry
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", line+1, err)
		}
		line++
		id, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace record %d: bad id %q", line, rec[0])
		}
		nums := make([]float64, len(rec)-1)
		for i, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace record %d field %d: %w", line, i+2, err)
			}
			nums[i] = v
		}
		if nums[1] < nums[0] {
			return nil, fmt.Errorf("workload: trace record %d: t1 < t0", line)
		}
		seg := geom.Segment{
			T:     geom.Interval{Lo: nums[0], Hi: nums[1]},
			Start: append(geom.Point(nil), nums[2:2+dims]...),
			End:   append(geom.Point(nil), nums[2+dims:2+2*dims]...),
		}
		out = append(out, rtree.LeafEntry{ID: rtree.ObjectID(id), Seg: seg})
	}
}
