package workload

import (
	"bytes"
	"strings"
	"testing"

	"dynq/internal/motion"
	"dynq/internal/rtree"
)

func TestTraceRoundTrip(t *testing.T) {
	segs, err := motion.GenerateSegments(motion.SimConfig{
		Objects: 10, Dims: 2, WorldSize: 100, Duration: 20,
		Speed: 1, UpdateMean: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 2, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(entries))
	}
	for i := range got {
		a, b := got[i], entries[i]
		if a.ID != b.ID || a.Seg.T != b.Seg.T ||
			a.Seg.Start[0] != b.Seg.Start[0] || a.Seg.End[1] != b.Seg.End[1] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"not,a,number,0,0,1,1\n",
		"1,0,1,0,0\n",                 // wrong field count
		"1,5,4,0,0,1,1\n",             // t1 < t0
		"1,0,zero,0,0,1,1\n",          // bad float
		"-3,0,1,0,0,1,1\n",            // bad id
		"1,0,1,0,0,1,1,extra,extra\n", // too many fields
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c), 2); err == nil {
			t.Errorf("trace %q should be rejected", c)
		}
	}
	// Empty trace is fine.
	got, err := ReadTrace(strings.NewReader(""), 2)
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace = %v, %v", got, err)
	}
}

func TestWriteTraceRejectsWrongDims(t *testing.T) {
	entries := []rtree.LeafEntry{{ID: 1}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 2, entries); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
}
