// Package workload reproduces the experimental setup of Section 5: the
// mobile-object population (5000 objects, 100×100 space, 100 time units,
// ≈500k motion segments), and query trajectories at controlled overlap
// levels between consecutive snapshot queries.
//
// The paper measures at overlaps {0, 25, 50, 80, 90, 99.99}% and spatial
// ranges {8×8, 14×14, 20×20}, posing one snapshot query every 0.1 time
// unit and averaging subsequent-query cost over 50 consecutive snapshots
// per dynamic query.
package workload

import (
	"fmt"
	"math/rand"

	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/rtree"
	"dynq/internal/trajectory"
)

// Overlaps are the paper's consecutive-snapshot overlap levels.
var Overlaps = []float64{0, 0.25, 0.50, 0.80, 0.90, 0.9999}

// Ranges are the paper's query window sides: small, medium, big.
var Ranges = []float64{8, 14, 20}

// FrameDt is the snapshot period: one query every 0.1 time unit.
const FrameDt = 0.1

// SubsequentFrames is the number of subsequent snapshot queries averaged
// per dynamic query in the paper's plots.
const SubsequentFrames = 50

// BuildIndex generates the paper's object population (optionally scaled
// down by objectScale ∈ (0,1] for quick runs) and bulk-loads it into a
// tree with the given layout at the paper's 0.5 fill factor.
func BuildIndex(cfg rtree.Config, objectScale float64, seed int64) (*rtree.Tree, int, error) {
	if objectScale <= 0 || objectScale > 1 {
		return nil, 0, fmt.Errorf("workload: objectScale must be in (0,1], got %g", objectScale)
	}
	sim := motion.PaperConfig()
	sim.Objects = int(float64(sim.Objects) * objectScale)
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	sim.Seed = seed
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		return nil, 0, err
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	tree, err := rtree.BulkLoad(cfg, pager.NewMemStore(), entries)
	if err != nil {
		return nil, 0, err
	}
	return tree, len(entries), nil
}

// BuildMixedIndex generates a population mixing mobile vehicles (the
// paper's main workload, ~100 segments each) with long-lived static
// objects — the landmarks, sensor fields and obstructions of the paper's
// introduction, one whole-duration zero-velocity segment each. This is
// the regime where NPDQ discardability has the most to prune (see
// DESIGN.md "Findings").
func BuildMixedIndex(cfg rtree.Config, nMobile, nStatic int, seed int64) (*rtree.Tree, int, error) {
	if nMobile < 0 || nStatic < 0 || nMobile+nStatic == 0 {
		return nil, 0, fmt.Errorf("workload: need a non-empty population")
	}
	var entries []rtree.LeafEntry

	if nMobile > 0 {
		sim := motion.PaperConfig()
		sim.Objects = nMobile
		sim.Seed = seed
		segs, err := motion.GenerateSegments(sim)
		if err != nil {
			return nil, 0, err
		}
		for _, s := range segs {
			entries = append(entries, rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg})
		}
	}
	r := rand.New(rand.NewSource(seed + 7))
	for i := 0; i < nStatic; i++ {
		x, y := r.Float64()*100, r.Float64()*100
		entries = append(entries, rtree.LeafEntry{
			ID: rtree.ObjectID(1_000_000 + i),
			Seg: geom.Segment{
				T:     geom.Interval{Lo: 0, Hi: 100},
				Start: geom.Point{x, y},
				End:   geom.Point{x, y},
			},
		})
	}
	tree, err := rtree.BulkLoad(cfg, pager.NewMemStore(), entries)
	if err != nil {
		return nil, 0, err
	}
	return tree, len(entries), nil
}

// QueryConfig describes one dynamic-query workload point.
type QueryConfig struct {
	Range     float64 // query window side w
	Overlap   float64 // consecutive-snapshot overlap fraction ∈ [0,1)
	Frames    int     // subsequent snapshot queries after the first
	WorldSize float64 // data space side
	Duration  float64 // data time span
}

// PaperQuery returns the workload point for one (overlap, range) cell of
// the paper's figures.
func PaperQuery(overlap, rng float64) QueryConfig {
	return QueryConfig{
		Range:     rng,
		Overlap:   overlap,
		Frames:    SubsequentFrames,
		WorldSize: 100,
		Duration:  100,
	}
}

// Step returns the spatial displacement between consecutive snapshots:
// the window slides by (1-overlap)·w each frame, along one axis.
func (q QueryConfig) Step() float64 { return (1 - q.Overlap) * q.Range }

// Speed returns the observer speed implied by the overlap level.
func (q QueryConfig) Speed() float64 { return q.Step() / FrameDt }

func (q QueryConfig) validate() error {
	if q.Range <= 0 || q.Range > q.WorldSize {
		return fmt.Errorf("workload: range %g out of (0, %g]", q.Range, q.WorldSize)
	}
	if q.Overlap < 0 || q.Overlap >= 1 {
		return fmt.Errorf("workload: overlap %g out of [0,1)", q.Overlap)
	}
	if q.Frames < 1 {
		return fmt.Errorf("workload: need at least 1 frame")
	}
	return nil
}

// Query is one generated dynamic query: the observer trajectory plus the
// per-frame snapshot decomposition (window and time interval per frame,
// frame 0 being the paper's "first query").
type Query struct {
	Traj    *trajectory.Trajectory
	Windows []geom.Box
	Times   []geom.Interval
}

// Generate builds one dynamic query: a random start position and a random
// axis-aligned heading, reflecting off the world border so the query
// stays over data (the trajectory becomes piecewise linear, which the
// PDQ key-snapshot representation captures directly).
func Generate(q QueryConfig, r *rand.Rand) (*Query, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	nFrames := q.Frames + 1 // first + subsequent
	span := float64(nFrames) * FrameDt
	t0 := r.Float64() * (q.Duration - span)

	// Low-corner positions pos[0..nFrames] (one beyond the last frame so
	// the trajectory's time span covers the last frame's interval), kept
	// in [0, world-range] by reflecting the heading at the border.
	maxPos := q.WorldSize - q.Range
	step := q.Step()
	dirs := [][2]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	dir := dirs[r.Intn(len(dirs))]

	pos := make([][2]float64, nFrames+1)
	stepDir := make([][2]float64, nFrames+1) // heading used to reach pos[f]
	pos[0] = [2]float64{r.Float64() * maxPos, r.Float64() * maxPos}
	for f := 1; f <= nFrames; f++ {
		nx := pos[f-1][0] + dir[0]*step
		ny := pos[f-1][1] + dir[1]*step
		if nx < 0 || nx > maxPos {
			dir[0] = -dir[0]
			nx = pos[f-1][0] + dir[0]*step
		}
		if ny < 0 || ny > maxPos {
			dir[1] = -dir[1]
			ny = pos[f-1][1] + dir[1]*step
		}
		pos[f] = [2]float64{clamp(nx, maxPos), clamp(ny, maxPos)}
		stepDir[f] = dir
	}

	// Key snapshots at the start, at every heading change, and at the end:
	// between keys the window moves at constant velocity, so the
	// interpolated trajectory reproduces every frame window exactly.
	var keys []trajectory.Key
	addKey := func(f int) {
		keys = append(keys, trajectory.Key{
			T:      t0 + float64(f)*FrameDt,
			Window: windowAt(pos[f][0], pos[f][1], q.Range),
		})
	}
	addKey(0)
	for f := 1; f < nFrames; f++ {
		if stepDir[f+1] != stepDir[f] {
			addKey(f)
		}
	}
	addKey(nFrames)

	windows := make([]geom.Box, nFrames)
	times := make([]geom.Interval, nFrames)
	for f := 0; f < nFrames; f++ {
		windows[f] = windowAt(pos[f][0], pos[f][1], q.Range)
		tf := t0 + float64(f)*FrameDt
		times[f] = geom.Interval{Lo: tf, Hi: tf + FrameDt}
	}
	tr, err := trajectory.New(keys)
	if err != nil {
		return nil, err
	}
	return &Query{Traj: tr, Windows: windows, Times: times}, nil
}

func windowAt(x, y, w float64) geom.Box {
	return geom.Box{{Lo: x, Hi: x + w}, {Lo: y, Hi: y + w}}
}

func clamp(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}
