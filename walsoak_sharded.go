package dynq

// The sharded variant of the WAL soak: crash/reopen cycles against a
// sharded database with one log per shard. The workload mirrors
// WALSoak; the adversary is stronger — each crash tears a random
// SUBSET of the shard logs, so recovery must replay N logs that
// diverged independently (one torn mid-record, one clean, one freshly
// checkpointed) and still lose nothing that was acknowledged.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"dynq/internal/pager"
)

// walSoakSharded runs the crash/reopen loop against a sharded database
// at path (".shard<i>" page files plus ".shard<i>.wal" logs). Options
// arrive defaulted by WALSoak. Invariants match the single-tree soak:
// zero lost acked batches, zero wrong answers — checked per shard, so
// an acked sub-batch missing from even one shard's replay counts as
// lost.
func walSoakSharded(opts WALSoakOptions, path string) (WALSoakReport, error) {
	var rep WALSoakReport
	var committed []soakSeg
	replica, err := OpenSharded(ShardOptions{Shards: opts.Shards})
	if err != nil {
		return rep, err
	}
	defer func() { replica.Close() }()
	if err := rebuildShardedWAL(path, opts.Shards, opts.BufferPages, committed); err != nil {
		return rep, err
	}

	wrand := rand.New(rand.NewSource(opts.Seed))
	var nextID ObjectID
	var pendingAsync [][]soakSeg
	for cycle := 0; cycle < opts.Cycles; cycle++ {
		rep.Cycles++

		// Recovery phase: reopen all shards, replay every log, reconcile
		// the replica with each shard's surviving async prefix, compare.
		db, rreps, err := OpenShardedRecover(path, ShardRecoverOptions{
			Shards:      opts.Shards,
			WAL:         true,
			BufferPages: opts.BufferPages,
		})
		if err != nil {
			return rep, fmt.Errorf("cycle %d: reopen: %w", cycle, err)
		}
		tornThisCycle := false
		for i, rrep := range rreps {
			if !rrep.WALArmed {
				db.Close()
				return rep, fmt.Errorf("cycle %d: reopen did not arm shard %d's log", cycle, i)
			}
			rep.RecordsReplayed += rrep.WALRecordsReplayed
			rep.UpdatesReplayed += rrep.WALUpdatesReplayed
			tornThisCycle = tornThisCycle || rrep.WALTornTail
		}
		if tornThisCycle {
			rep.TornTails++
		}
		survived, err := reconcileAsyncSharded(db, replica, &committed, pendingAsync)
		if err != nil {
			db.Close()
			return rep, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		if survived < 0 {
			rep.LostAcked++
			survived = 0
		}
		rep.AsyncSurvived += survived
		pendingAsync = nil
		qrand := rand.New(rand.NewSource(opts.Seed ^ (int64(cycle)+1)*0x5DEECE66D))
		wrong, compared, err := compareAnswers(db, replica, qrand)
		if err != nil {
			db.Close()
			return rep, fmt.Errorf("cycle %d: query comparison: %w", cycle, err)
		}
		rep.WrongAnswers += wrong
		rep.QueriesCompared += compared

		// Acknowledged write phase: concurrent batches spanning shards,
		// group-committed across every touched log.
		acked := make([][]soakSeg, opts.AckedBatches)
		ackedUps := make([][]MotionUpdate, opts.AckedBatches)
		for i := range acked {
			acked[i] = genSoakBatch(wrand, opts.Batch, &nextID)
			ackedUps[i] = toUpdates(acked[i])
			if wrand.Intn(3) == 0 {
				ackedUps[i] = withChurn(ackedUps[i])
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, opts.Writers)
		for w := 0; w < opts.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ackedUps); i += opts.Writers {
					d := DurabilityGroupCommit
					if i%5 == 4 {
						d = DurabilitySync
					}
					if err := db.ApplyUpdates(context.Background(), ackedUps[i], WriteOptions{Durability: d}); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: acked batch: %w", cycle, err)
			}
		}
		rep.BatchesAcked += len(acked)
		for _, b := range acked {
			committed = append(committed, b...)
			for _, s := range b {
				if err := replica.Insert(s.id, s.seg); err != nil {
					db.Close()
					return rep, fmt.Errorf("cycle %d: replica insert: %w", cycle, err)
				}
			}
		}

		if opts.CheckpointEvery > 0 && cycle%opts.CheckpointEvery == opts.CheckpointEvery-1 {
			if err := db.Sync(); err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: checkpoint: %w", cycle, err)
			}
			rep.Checkpoints++
		}

		// The per-log durable boundaries: the soak is quiescent, so every
		// byte of every log is fsync-covered; tears land strictly beyond.
		ackedSizes := make([]int64, opts.Shards)
		for i := range ackedSizes {
			if ackedSizes[i], err = fileSize(shardWALPath(path, i)); err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: %w", cycle, err)
			}
		}

		// Async tail: applied in memory, never awaited. Each batch leaves
		// one record in every shard log it touches.
		for i := 0; i < opts.AsyncBatches; i++ {
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			if err := db.ApplyUpdates(context.Background(), toUpdates(b), WriteOptions{Durability: DurabilityAsync}); err != nil {
				db.Close()
				return rep, fmt.Errorf("cycle %d: async batch: %w", cycle, err)
			}
			pendingAsync = append(pendingAsync, b)
		}
		rep.BatchesAsync += len(pendingAsync)

		if err := crashShardedDB(db); err != nil {
			return rep, fmt.Errorf("cycle %d: crash: %w", cycle, err)
		}
		// Tear a random subset of the logs — divergence across shards is
		// the point: one log torn mid-record, its neighbor untouched.
		tornAny := false
		for i := 0; i < opts.Shards; i++ {
			torn, err := tearWALTail(shardWALPath(path, i), ackedSizes[i], wrand)
			if err != nil {
				return rep, fmt.Errorf("cycle %d: tear shard %d: %w", cycle, i, err)
			}
			tornAny = tornAny || torn
		}
		if tornAny {
			rep.Tears++
		}

		if len(committed) >= opts.MaxSegments {
			committed = committed[:0]
			pendingAsync = nil
			replica.Close()
			if replica, err = OpenSharded(ShardOptions{Shards: opts.Shards}); err != nil {
				return rep, err
			}
			if err := rebuildShardedWAL(path, opts.Shards, opts.BufferPages, committed); err != nil {
				return rep, err
			}
			rep.Rotations++
		}
		if opts.Log != nil && (cycle+1)%25 == 0 {
			opts.Log("sharded wal soak cycle %d/%d (%d shards): %s", cycle+1, opts.Cycles, opts.Shards, rep)
		}
	}
	return rep, nil
}

// reconcileAsyncSharded determines, per shard, how many of the
// pre-crash async records survived replay (each shard's log keeps a
// record-aligned prefix of ITS OWN records, independent of the other
// shards), applies exactly those segments to the replica, and returns
// the number of async batches that survived on every shard they
// touched. A negative return means a shard recovered fewer segments
// than its acknowledged state — lost acked data, the invariant the
// soak exists to catch.
func reconcileAsyncSharded(db, replica *ShardedDB, committed *[]soakSeg, pendingAsync [][]soakSeg) (int, error) {
	gotStats, err := db.StatsByShard()
	if err != nil {
		return 0, err
	}
	baseStats, err := replica.StatsByShard()
	if err != nil {
		return 0, err
	}
	n := db.Shards()

	// Partition each pending batch by owner shard: subs[s] is the ordered
	// list of this crash window's async records in shard s's log, and
	// batchOf[s][j] says which batch record j came from.
	subs := make([][][]soakSeg, n)
	batchOf := make([][]int, n)
	for b, batch := range pendingAsync {
		parts := make([][]soakSeg, n)
		for _, s := range batch {
			sh := db.ShardFor(s.id)
			parts[sh] = append(parts[sh], s)
		}
		for s, p := range parts {
			if len(p) > 0 {
				subs[s] = append(subs[s], p)
				batchOf[s] = append(batchOf[s], b)
			}
		}
	}

	// Each shard's extra segments must be an exact prefix sum of its
	// async record sizes: replay keeps whole records, in order.
	survivedRecords := make([]int, n)
	for s := 0; s < n; s++ {
		extra := gotStats[s].Segments - baseStats[s].Segments
		if extra < 0 {
			return -1, nil
		}
		sum, m := 0, 0
		for m < len(subs[s]) && sum < extra {
			sum += len(subs[s][m])
			m++
		}
		if sum != extra {
			return 0, fmt.Errorf("shard %d recovered %d extra segments, not a record-aligned prefix of its %d async records",
				s, extra, len(subs[s]))
		}
		survivedRecords[s] = m
	}

	// Fold the surviving per-shard records into the replica and the
	// committed set; count the batches intact on every shard they touch.
	fullBatch := make([]bool, len(pendingAsync))
	for i := range fullBatch {
		fullBatch[i] = true
	}
	for s := 0; s < n; s++ {
		for j := 0; j < survivedRecords[s]; j++ {
			for _, seg := range subs[s][j] {
				*committed = append(*committed, seg)
				if err := replica.Insert(seg.id, seg.seg); err != nil {
					return 0, fmt.Errorf("replica insert: %w", err)
				}
			}
		}
		for j := survivedRecords[s]; j < len(subs[s]); j++ {
			fullBatch[batchOf[s][j]] = false
		}
	}
	survived := 0
	for _, ok := range fullBatch {
		if ok {
			survived++
		}
	}
	return survived, nil
}

// crashShardedDB abandons a sharded database without flushing: the
// worker pool stops, then every log and page store is closed the way a
// real crash leaves them — no final sync, buffered pages lost, each log
// ending wherever its last append stopped.
func crashShardedDB(db *ShardedDB) error {
	db.engine.Shutdown()
	for _, w := range db.wals {
		w.Crash()
	}
	var first error
	for i := 0; i < db.engine.Shards(); i++ {
		st := db.engine.Shard(i).Store()
		if fs, ok := st.(*pager.FileStore); ok {
			if err := fs.Crash(); err != nil && first == nil {
				first = err
			}
		} else if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// rebuildShardedWAL removes any previous shard set at path and creates
// a fresh sharded database holding the committed sequence, checkpointed
// so the next recovering open has nothing to replay.
func rebuildShardedWAL(path string, shards, bufferPages int, committed []soakSeg) error {
	for i := 0; i < shards; i++ {
		for _, p := range []string{shardFilePath(path, i), shardWALPath(path, i)} {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	db, err := OpenSharded(ShardOptions{
		Options: Options{Path: path, BufferPages: bufferPages},
		Shards:  shards,
		WAL:     true,
	})
	if err != nil {
		return err
	}
	if len(committed) > 0 {
		// One async batch, then a checkpoint: the contents are already
		// durable by the Sync below, so per-insert fsync waits buy nothing.
		if err := db.ApplyUpdates(context.Background(), toUpdates(committed), WriteOptions{Durability: DurabilityAsync}); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Sync(); err != nil {
		db.Close()
		return err
	}
	return db.Close()
}
