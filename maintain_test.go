package dynq

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dynq/internal/obs"
	"dynq/internal/pager"
)

// openMaintTest opens a WAL-armed file database with a fault-injecting
// store and a manual maintenance loop driven by the returned clock.
func openMaintTest(t *testing.T, mopts MaintenanceOptions) (*DB, *pager.FileStore, *pager.FaultStore, *chaosClock) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "db.dynq")
	walPath := path + ".wal"
	clk := &chaosClock{t: time.Unix(1_700_000_000, 0)}
	mopts.Interval = -1 // manual ticks
	if err := rebuildFileWAL(path, walPath, nil, 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	db, fs, faults, _, err := openChaos(path, walPath, 0, mopts, clk.Now, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	if db.maint == nil {
		t.Fatal("maintenance loop did not start")
	}
	return db, fs, faults, clk
}

// TestAutoCheckpointBoundsWAL is the headline acceptance check for the
// checkpoint policy: sustained ingest with NO caller Sync must keep the
// write-ahead log's live bytes bounded, because the maintenance tick
// checkpoints it whenever MaxBytes is crossed.
func TestAutoCheckpointBoundsWAL(t *testing.T) {
	const maxBytes = 4 << 10
	db, _, _, _ := openMaintTest(t, MaintenanceOptions{
		Checkpoint: CheckpointPolicy{MaxBytes: maxBytes},
	})
	r := rand.New(rand.NewSource(7))
	var next ObjectID = 1
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		ups := toUpdates(genSoakBatch(r, 16, &next))
		if err := db.ApplyUpdates(ctx, ups, WriteOptions{Durability: DurabilitySync}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		db.maint.tick()
		// Right after a tick the log is either under threshold or was
		// just truncated by the policy checkpoint; either way bounded.
		if lb := db.wal.LiveBytes(); lb >= maxBytes {
			t.Fatalf("batch %d: %d live bytes after a maintenance tick, policy MaxBytes %d", i, lb, maxBytes)
		}
	}
	if n := db.maint.autoCheckpoints.Load(); n == 0 {
		t.Fatal("40 durable batches with no caller Sync took zero auto-checkpoints")
	}
	if n := db.maint.checkpointFailures.Load(); n != 0 {
		t.Fatalf("%d auto-checkpoints failed on a healthy store", n)
	}
}

// TestAutoCheckpointMaxAge: a log under the byte threshold still gets
// checkpointed once its oldest un-checkpointed record outlives MaxAge.
func TestAutoCheckpointMaxAge(t *testing.T) {
	db, _, _, clk := openMaintTest(t, MaintenanceOptions{
		Checkpoint: CheckpointPolicy{MaxBytes: 1 << 30, MaxAge: time.Minute},
	})
	r := rand.New(rand.NewSource(11))
	var next ObjectID = 1
	ups := toUpdates(genSoakBatch(r, 4, &next))
	if err := db.ApplyUpdates(context.Background(), ups, WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	db.maint.tick() // marks the log as lagging, far from both thresholds
	if n := db.maint.autoCheckpoints.Load(); n != 0 {
		t.Fatalf("checkpointed %d times while %v under MaxAge", n, time.Minute)
	}
	clk.Advance(2 * time.Minute)
	db.maint.tick()
	if n := db.maint.autoCheckpoints.Load(); n != 1 {
		t.Fatalf("auto-checkpoints after MaxAge elapsed = %d, want 1", n)
	}
	if lb := db.wal.LiveBytes(); lb != 0 {
		t.Fatalf("%d live bytes after the age-policy checkpoint, want 0", lb)
	}
}

// TestProbeHealsDiskFull drives the full degraded-mode round trip: a
// sticky ENOSPC on the page store degrades the database with a typed
// error, probes fail (with backoff) while the device is full, and the
// first probe after space returns heals it — no operator involved.
func TestProbeHealsDiskFull(t *testing.T) {
	db, _, faults, clk := openMaintTest(t, MaintenanceOptions{
		ProbeBackoff: 10 * time.Millisecond,
	})
	r := rand.New(rand.NewSource(3))
	var next ObjectID = 1
	ctx := context.Background()
	base := toUpdates(genSoakBatch(r, 32, &next))
	if err := db.ApplyUpdates(ctx, base, WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}

	faults.ArmNoSpace(1, true)
	err := db.Sync()
	if err == nil {
		t.Fatal("Sync on a full device succeeded")
	}
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Sync on a full device returned %v, want errors.Is(err, ErrDiskFull)", err)
	}
	if !db.Degraded() {
		t.Fatal("failed WAL-armed Sync did not degrade the database")
	}
	ups := toUpdates(genSoakBatch(r, 4, &next))
	if err := db.ApplyUpdates(ctx, ups, WriteOptions{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write while degraded returned %v, want errors.Is(err, ErrReadOnly)", err)
	}

	// The device is still full: probes must fail and back off, not heal.
	db.maint.tick()
	if db.maint.probeCount.Load() == 0 {
		t.Fatal("no probe attempted on the first degraded tick")
	}
	if db.maint.probeFailures.Load() == 0 {
		t.Fatal("probe succeeded while the device was still full")
	}
	if !db.Degraded() {
		t.Fatal("database healed while the device was still full")
	}

	faults.DisarmNoSpace()
	for i := 0; i < 50 && db.Degraded(); i++ {
		clk.Advance(500 * time.Millisecond) // past the capped backoff
		db.maint.tick()
	}
	if db.Degraded() {
		t.Fatalf("database did not heal after space returned (%d probes, %d failures)",
			db.maint.probeCount.Load(), db.maint.probeFailures.Load())
	}
	if db.maint.heals.Load() != 1 {
		t.Fatalf("heals = %d, want 1", db.maint.heals.Load())
	}
	found := false
	for _, ev := range obs.DefaultJournal().Recent(32) {
		if ev.Type == obs.EventDegradedExit {
			found = true
			break
		}
	}
	if !found {
		t.Error("no degraded_exit event journaled for the healed episode")
	}
	// The heal must be real: a normal durable write goes through.
	ups = toUpdates(genSoakBatch(r, 4, &next))
	if err := db.ApplyUpdates(ctx, ups, WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatalf("durable write after heal: %v", err)
	}
}

// TestScrubDetectsCorruptionAndHoldsDegraded: a bit flip on a committed
// page must be caught by the background scrubber (not the next crash),
// trip read-only mode, and pause probing until a clean pass — then the
// probe path heals the database once the page verifies again.
func TestScrubDetectsCorruptionAndHoldsDegraded(t *testing.T) {
	db, fs, _, clk := openMaintTest(t, MaintenanceOptions{
		ScrubPagesPerSec: 1_000_000, // whole tree per tick
		ProbeBackoff:     10 * time.Millisecond,
	})
	r := rand.New(rand.NewSource(5))
	var next ObjectID = 1
	ctx := context.Background()
	ups := toUpdates(genSoakBatch(r, 200, &next))
	if err := db.ApplyUpdates(ctx, ups, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.maint.tick() // one clean pass first
	if n := db.maint.scrubPassCount.Load(); n == 0 {
		t.Fatal("scrubber completed no pass over a small committed tree")
	}
	if n := db.maint.scrubCorruptCount.Load(); n != 0 {
		t.Fatalf("clean tree scrubbed with %d corruptions", n)
	}

	meta, _, err := decodeMeta(fs.Aux())
	if err != nil {
		t.Fatal(err)
	}
	const bit = 40_003 // payload bit; any flip breaks the page checksum
	if err := fs.FlipBit(meta.Root, bit); err != nil {
		t.Fatal(err)
	}
	db.maint.tick()
	if db.maint.scrubCorruptCount.Load() == 0 {
		t.Fatal("scrub missed a flipped bit on the committed root")
	}
	if !db.Degraded() {
		t.Fatal("scrub corruption did not trip degraded mode")
	}
	// Corruption holds the flag: ticks scrub, they must not probe.
	probes := db.maint.probeCount.Load()
	clk.Advance(time.Second)
	db.maint.tick()
	if got := db.maint.probeCount.Load(); got != probes {
		t.Fatalf("probing ran under the corruption hold (%d -> %d probes)", probes, got)
	}
	if db.maint.heals.Load() != 0 {
		t.Fatal("database healed while the committed root was corrupt")
	}

	// Flip the bit back: the next clean pass lifts the hold, then the
	// probe path takes over and heals with a durable write.
	if err := fs.FlipBit(meta.Root, bit); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && db.Degraded(); i++ {
		clk.Advance(500 * time.Millisecond)
		db.maint.tick()
	}
	if db.Degraded() {
		t.Fatal("database did not heal after the corruption was repaired")
	}
	if db.maint.heals.Load() != 1 {
		t.Fatalf("heals = %d, want 1", db.maint.heals.Load())
	}
}

// TestFailedCheckpointKeepsWALRecords is the regression for the
// checkpoint/durability contract: a checkpoint that fails must not
// advance the log's checkpoint LSN, so every acked record is still
// replayed by the next recovery.
func TestFailedCheckpointKeepsWALRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.dynq")
	walPath := path + ".wal"
	// A page buffer keeps uncommitted tree writes off the committed
	// file, so the post-crash state is exactly "failed checkpoint":
	// old committed tree + intact log.
	const bufPages = 256
	clk := &chaosClock{t: time.Unix(1_700_000_000, 0)}
	if err := rebuildFileWAL(path, walPath, nil, bufPages); err != nil {
		t.Fatal(err)
	}
	db, fs, faults, _, err := openChaos(path, walPath, bufPages, MaintenanceOptions{}, clk.Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	var next ObjectID = 1
	ctx := context.Background()
	a := toUpdates(genSoakBatch(r, 50, &next))
	if err := db.ApplyUpdates(ctx, a, WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	b := toUpdates(genSoakBatch(r, 50, &next))
	if err := db.ApplyUpdates(ctx, b, WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	want := db.Len()

	ckptBefore := db.wal.CheckpointLSN()
	liveBefore := db.wal.LiveBytes()
	faults.ArmNoSpace(1, true)
	if err := db.Sync(); err == nil {
		t.Fatal("checkpoint on a full device succeeded")
	}
	if got := db.wal.CheckpointLSN(); got != ckptBefore {
		t.Fatalf("failed checkpoint advanced the checkpoint LSN %d -> %d", ckptBefore, got)
	}
	if got := db.wal.LiveBytes(); got < liveBefore {
		t.Fatalf("failed checkpoint truncated live records (%d -> %d bytes)", liveBefore, got)
	}
	faults.DisarmNoSpace()

	// Crash with the page file mid-flush: recovery must replay batch B
	// from the log the failed checkpoint left intact.
	if err := chaosCrash(db, fs); err != nil {
		t.Fatal(err)
	}
	db2, _, _, rep, err := openChaos(path, walPath, bufPages, MaintenanceOptions{}, clk.Now, nil)
	if err != nil {
		t.Fatalf("reopen after failed checkpoint + crash: %v", err)
	}
	defer db2.Close()
	if rep.WALRecordsReplayed == 0 {
		t.Fatal("recovery replayed nothing though the checkpoint failed")
	}
	if got := db2.Len(); got != want {
		t.Fatalf("recovered %d objects, want %d (acked batch lost)", got, want)
	}
}

// TestShardedMaintenanceRace runs a live (goroutine) maintenance loop
// against concurrent writers and caller Syncs on a sharded WAL-armed
// database; the race detector referees.
func TestShardedMaintenanceRace(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenShardedRecover(filepath.Join(dir, "db.dynq"), ShardRecoverOptions{
		Shards: 4,
		WAL:    true,
		Maintenance: MaintenanceOptions{
			Checkpoint:   CheckpointPolicy{MaxBytes: 8 << 10},
			ProbeBackoff: time.Second,
			Interval:     2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			next := ObjectID(1 + 10_000*w)
			for i := 0; i < 25; i++ {
				ups := toUpdates(genSoakBatch(r, 8, &next))
				if err := db.ApplyUpdates(ctx, ups, WriteOptions{Durability: DurabilitySync}); err != nil {
					t.Errorf("writer %d batch %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := db.Sync(); err != nil {
					t.Errorf("concurrent Sync: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, ok := db.MaintenanceTelemetry(); !ok {
		t.Fatal("maintenance loop not running on the sharded database")
	}
}
