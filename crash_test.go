package dynq

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"dynq/internal/pager"
)

// TestCrashAtEveryFlushBoundary is the exhaustive crash simulation: a
// buffered database flushes W dirty pages at Sync; the test kills the
// write stream at every boundary k = 1..W (torn write at k, hard failure
// after) plus k = W+1 (no crash), reopens with full recovery, and checks
// that the database either reports typed corruption or answers all four
// query types exactly like a replica that never crashed — the pre-batch
// replica when the Sync failed, the post-batch replica when it
// succeeded.
func TestCrashAtEveryFlushBoundary(t *testing.T) {
	const bufferPages = 256
	path := filepath.Join(t.TempDir(), "crash.dynq")

	// Deterministic workload: committed base batch A, then crash-prone
	// batch B.
	wrand := rand.New(rand.NewSource(99))
	var nextID ObjectID
	batchA := genSoakBatch(wrand, 400, &nextID)
	batchB := genSoakBatch(wrand, 400, &nextID)

	// Never-crashed replicas of the two states the file may legally hold.
	pre := mustReplica(t, batchA)
	defer pre.Close()
	post := mustReplica(t, append(append([]soakSeg(nil), batchA...), batchB...))
	defer post.Close()

	// Dry run: count the page writes one Sync of batch B performs.
	if err := rebuildFile(path, batchA, bufferPages); err != nil {
		t.Fatalf("seed file: %v", err)
	}
	db, fs, faults, err := openFaulted(path, nil, bufferPages)
	if err != nil {
		t.Fatalf("dry-run open: %v", err)
	}
	insertAll(t, db, batchB)
	if err := db.Sync(); err != nil {
		t.Fatalf("dry-run sync: %v", err)
	}
	writes := faults.Stats().Writes
	if err := fs.Crash(); err != nil {
		t.Fatalf("dry-run crash: %v", err)
	}
	if writes < 2 {
		t.Fatalf("dry run performed only %d page writes; batch too small to exercise flush boundaries", writes)
	}
	t.Logf("flush writes %d pages; simulating a crash at every boundary", writes)

	var corrupt, cleanPre, cleanPost int
	for k := int64(1); k <= writes+1; k++ {
		if err := rebuildFile(path, batchA, bufferPages); err != nil {
			t.Fatalf("k=%d: rebuild: %v", k, err)
		}
		db, fs, faults, err := openFaulted(path, nil, bufferPages)
		if err != nil {
			t.Fatalf("k=%d: open: %v", k, err)
		}
		insertAll(t, db, batchB)
		faults.ArmTornWrites(k)
		syncErr := db.Sync()
		if err := fs.Crash(); err != nil {
			t.Fatalf("k=%d: crash: %v", k, err)
		}
		if k <= writes && syncErr == nil {
			t.Fatalf("k=%d: sync succeeded despite a torn write", k)
		}
		if k == writes+1 && syncErr != nil {
			t.Fatalf("k=%d: sync past the last write boundary should succeed, got %v", k, syncErr)
		}

		rdb, _, err := OpenFileRecover(path)
		if err != nil {
			if !isTypedCorruption(err) {
				t.Fatalf("k=%d: reopen failed with untyped error: %v", k, err)
			}
			corrupt++
			continue
		}
		want := pre
		if syncErr == nil {
			want = post
			cleanPost++
		} else {
			cleanPre++
		}
		qrand := rand.New(rand.NewSource(1000 + k))
		wrong, compared, err := compareAnswers(rdb, want, qrand)
		rdb.Close()
		if err != nil {
			t.Fatalf("k=%d: query comparison: %v", k, err)
		}
		if wrong != 0 {
			t.Fatalf("k=%d: recovered database gave %d/%d wrong answers (sync err: %v)",
				k, wrong, compared, syncErr)
		}
	}
	t.Logf("boundaries: %d detected corruptions, %d clean pre-batch recoveries, %d clean post-batch recoveries",
		corrupt, cleanPre, cleanPost)
	if cleanPost == 0 {
		t.Fatalf("the no-crash boundary (k=%d) must recover the post-batch state", writes+1)
	}
	if corrupt+cleanPre == 0 {
		t.Fatal("no boundary exercised a failed sync — the harness is not tearing writes")
	}
}

// TestSyncFaultLeavesCommittedState is the DB.Sync error-path regression
// test: an injected Sync failure must surface the error, and the file
// must still open to the previously committed state.
func TestSyncFaultLeavesCommittedState(t *testing.T) {
	const bufferPages = 256
	path := filepath.Join(t.TempDir(), "syncfault.dynq")
	wrand := rand.New(rand.NewSource(5))
	var nextID ObjectID
	batchA := genSoakBatch(wrand, 48, &nextID)
	batchB := genSoakBatch(wrand, 48, &nextID)
	pre := mustReplica(t, batchA)
	defer pre.Close()

	if err := rebuildFile(path, batchA, bufferPages); err != nil {
		t.Fatalf("seed file: %v", err)
	}
	db, fs, faults, err := openFaulted(path, nil, bufferPages)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	insertAll(t, db, batchB)
	faults.ArmSyncs(1) // the page flush succeeds; the commit fsync fails
	if err := db.Sync(); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("Sync with injected sync fault: got %v, want ErrInjected", err)
	}
	if got := faults.Stats().InjectedSyncs; got != 1 {
		t.Fatalf("injected syncs = %d, want 1", got)
	}
	if err := fs.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}

	rdb, rep, err := OpenFileRecover(path)
	if err != nil {
		// The flushed-but-uncommitted pages may have overwritten committed
		// ones in place; recovery must then say so, typed.
		if !isTypedCorruption(err) {
			t.Fatalf("reopen: untyped error %v", err)
		}
		t.Logf("recovery reported typed corruption (in-place overwrite before failed commit): %v", err)
		return
	}
	defer rdb.Close()
	qrand := rand.New(rand.NewSource(77))
	wrong, compared, err := compareAnswers(rdb, pre, qrand)
	if err != nil {
		t.Fatalf("query comparison: %v", err)
	}
	if wrong != 0 {
		t.Fatalf("recovered database gave %d/%d answers differing from committed state (%s)", wrong, compared, rep)
	}
}

func mustReplica(t *testing.T, segs []soakSeg) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatalf("replica open: %v", err)
	}
	for _, s := range segs {
		if err := db.Insert(s.id, s.seg); err != nil {
			t.Fatalf("replica insert: %v", err)
		}
	}
	return db
}

func insertAll(t *testing.T, db *DB, segs []soakSeg) {
	t.Helper()
	for _, s := range segs {
		if err := db.Insert(s.id, s.seg); err != nil {
			t.Fatalf("insert %d: %v", s.id, err)
		}
	}
}
