package dynq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dynq/internal/pager"
	"dynq/internal/wal"
)

// ChaosSoakOptions configure ChaosSoak, the combined adversary behind
// dqbench -faults -wal -chaos: crash/reopen cycles with torn log tails
// (WALSoak's adversary) interleaved with disk-full episodes on both the
// page store and the log, driven against a database whose self-healing
// maintenance loop — auto-checkpoint, degraded-mode recovery probe,
// background scrub — is ticked manually under an injected clock so every
// run is deterministic.
type ChaosSoakOptions struct {
	// Cycles is the number of crash/reopen iterations (default 60).
	Cycles int
	// Seed drives the workload, the fault schedule, and the query mix;
	// the same seed replays the same soak (default 1).
	Seed int64
	// Batch is the number of motion updates per batch (default 24).
	Batch int
	// AckedBatches is the number of durably acknowledged batches per
	// cycle (default 4). Every acknowledged batch MUST survive the crash.
	AckedBatches int
	// AsyncBatches is the number of DurabilityAsync batches appended
	// before each crash (default 3); the torn tail's victims.
	AsyncBatches int
	// Writers is the number of concurrent goroutines issuing the
	// acknowledged batches (default 4).
	Writers int
	// BufferPages is the page-buffer capacity (default 4096). As in
	// WALSoak it must hold the working set so a crash never tears the
	// page file itself.
	BufferPages int
	// MaxWALBytes is the auto-checkpoint policy's live-byte threshold
	// (default 4 KiB, low enough that a normal cycle's appends cross it).
	// The soak never calls Sync between fault episodes; the maintenance
	// loop alone must keep the log under this bound.
	MaxWALBytes int64
	// ProbeBudget is the maximum number of maintenance ticks a degraded
	// episode may take to heal once the fault clears (default 40);
	// exceeding it fails the soak.
	ProbeBudget int
	// ScrubEvery runs a full background-scrub pass every n-th cycle
	// (default 2; <0 disables). Committed pages are never corrupted by
	// this soak, so any scrub finding is a false positive and fails it.
	ScrubEvery int
	// MaxSegments rotates to a fresh file + log once the committed set
	// grows past it (default 8192).
	MaxSegments int
	// Dir is the working directory (default: a fresh temp dir).
	Dir string
	// Log, when set, receives one progress line per 10 cycles.
	Log func(format string, args ...any)
}

// ChaosSoakReport summarizes a ChaosSoak run. The invariants are
// LostAcked == 0 and WrongAnswers == 0 (WALSoak's durability and
// correctness contracts), plus the self-healing ones: every degraded
// episode heals within the probe budget (the run errors out otherwise),
// WALBoundViolations == 0 (the maintenance loop alone bounds the log),
// UntypedWriteErrors == 0 (disk-full and read-only failures carry their
// typed sentinels), and ScrubCorruptions == 0 (no false positives on
// clean data).
type ChaosSoakReport struct {
	Cycles             int // crash/reopen iterations executed
	BatchesAcked       int // durably acknowledged batches (all must survive)
	BatchesAsync       int // async batches exposed to the tear
	AsyncSurvived      int // async batches found intact after replay
	Tears              int // cycles whose log tail was torn or corrupted
	TornTails          int // reopens that reported a discarded torn tail
	AutoCheckpoints    int // policy-driven checkpoints by the maintenance loop
	CheckpointFailures int // policy-driven checkpoints that failed (fault episodes)
	WALBoundViolations int // post-tick live log bytes at/over the policy cap (MUST be 0)
	DiskFullEpisodes   int // sticky full-volume episodes (log or page store)
	TransientFaults    int // one-shot disk-full spikes
	DiskFullWrites     int // writes refused while a volume was full
	UntypedWriteErrors int // fault-path errors missing their typed sentinel (MUST be 0)
	Degradations       int // read-only trips across all episodes
	Probes             int // recovery probes issued by the maintenance loop
	Heals              int // degraded episodes cleared by a successful probe
	MaxProbesToHeal    int // worst probes-per-episode observed
	ScrubPasses        int // complete scrub sweeps
	ScrubPages         int // pages verified by the scrubber
	ScrubCorruptions   int // scrub findings (MUST be 0: data is never corrupted)
	RecordsReplayed    int // WAL records re-applied across all reopens
	UpdatesReplayed    int // motion updates re-applied across all reopens
	Rotations          int // fresh-file rotations after MaxSegments
	LostAcked          int // acknowledged batches missing after replay (MUST be 0)
	WrongAnswers       int // query answers differing from the replica (MUST be 0)
	QueriesCompared    int // individual query comparisons performed
}

func (r ChaosSoakReport) String() string {
	return fmt.Sprintf(
		"%d cycles: %d acked + %d async batches (%d survived), %d tears (%d torn tails) | %d auto-checkpoints (%d failed, %d bound violations) | %d disk-full episodes + %d transients (%d writes refused, %d untyped), %d degradations healed by %d probes (%d heals, worst %d probes) | %d scrub passes (%d pages, %d corruptions) | replayed %d records (%d updates), %d rotations | %d lost acked, %d wrong answers (%d queries)",
		r.Cycles, r.BatchesAcked, r.BatchesAsync, r.AsyncSurvived,
		r.Tears, r.TornTails,
		r.AutoCheckpoints, r.CheckpointFailures, r.WALBoundViolations,
		r.DiskFullEpisodes, r.TransientFaults, r.DiskFullWrites, r.UntypedWriteErrors,
		r.Degradations, r.Probes, r.Heals, r.MaxProbesToHeal,
		r.ScrubPasses, r.ScrubPages, r.ScrubCorruptions,
		r.RecordsReplayed, r.UpdatesReplayed, r.Rotations,
		r.LostAcked, r.WrongAnswers, r.QueriesCompared)
}

// chaosClock is the injected time source: maintenance backoff and
// checkpoint aging advance only when the soak says so.
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// chaosWALFault injects disk-full failures into the log's physical
// writes: sticky (a full volume, until cleared) or a one-shot burst (a
// transient spike that frees up on its own).
type chaosWALFault struct {
	sticky atomic.Bool
	burst  atomic.Int64
}

func (f *chaosWALFault) fault(string) error {
	if f.sticky.Load() {
		return pager.ErrNoSpace
	}
	for {
		n := f.burst.Load()
		if n <= 0 {
			return nil
		}
		if f.burst.CompareAndSwap(n, n-1) {
			return pager.ErrNoSpace
		}
	}
}

// openChaos reopens the committed file with full recovery, a FaultStore
// interposed on the page path, a fault-hooked WAL, and a manually ticked
// maintenance loop under the injected clock.
func openChaos(path, walPath string, bufferPages int, mopts MaintenanceOptions,
	now func() time.Time, walFault func(string) error) (*DB, *pager.FileStore, *pager.FaultStore, *RecoveryReport, error) {
	fail := func(err error) (*DB, *pager.FileStore, *pager.FaultStore, *RecoveryReport, error) {
		return nil, nil, nil, nil, err
	}
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		return fail(err)
	}
	faults := pager.NewFaultStore(fs)
	db, rep, err := recoverFileStore(fs, faults)
	if err != nil {
		fs.Close()
		return fail(err)
	}
	db.health.after = 2 // degrade on the second consecutive write failure
	if bufferPages > 0 {
		if err := db.tree.UseBuffer(bufferPages); err != nil {
			fs.Close()
			return fail(err)
		}
		db.bufferPages = bufferPages
	}
	if err := db.armWALWith(walPath, wal.Options{Fault: walFault}, rep); err != nil {
		fs.Close()
		return fail(err)
	}
	db.maint = startMaintainer(db, mopts)
	if db.maint != nil {
		db.maint.now = now
	}
	return db, fs, faults, rep, nil
}

// chaosCrash abandons the database as a power cut would: the log and the
// page file are dropped without a final sync.
func chaosCrash(db *DB, fs *pager.FileStore) error {
	db.wal.Crash()
	return fs.Crash()
}

// ChaosSoak runs the combined crash + disk-full + self-healing soak.
// Each cycle reopens with recovery and verifies against a never-crashed
// replica (WALSoak's loop), then lets the maintenance tick bound the log
// by policy, then — on a rotating schedule — fills a volume (the log's
// or the page store's, sticky or transient), drives the database into
// read-only mode, clears the fault, and requires the maintenance probe
// to heal it within the probe budget and prove the heal with a durable
// write. Scrub passes over the committed tree must stay clean
// throughout. The cycle ends in a hard crash and a torn log tail. It
// returns an error for harness failures and for self-healing contract
// violations (an episode that never heals); durability and correctness
// violations are counted in the report.
func ChaosSoak(opts ChaosSoakOptions) (ChaosSoakReport, error) {
	if opts.Cycles <= 0 {
		opts.Cycles = 60
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Batch <= 0 {
		opts.Batch = 24
	}
	if opts.AckedBatches <= 0 {
		opts.AckedBatches = 4
	}
	if opts.AsyncBatches <= 0 {
		opts.AsyncBatches = 3
	}
	if opts.Writers <= 0 {
		opts.Writers = 4
	}
	if opts.BufferPages <= 0 {
		opts.BufferPages = 4096
	}
	if opts.MaxWALBytes <= 0 {
		opts.MaxWALBytes = 4 << 10
	}
	if opts.ProbeBudget <= 0 {
		opts.ProbeBudget = 40
	}
	if opts.ScrubEvery == 0 {
		opts.ScrubEvery = 2
	}
	if opts.MaxSegments <= 0 {
		opts.MaxSegments = 8192
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "dynq-chaossoak")
		if err != nil {
			return ChaosSoakReport{}, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "chaossoak.dynq")
	walPath := path + ".wal"

	mopts := MaintenanceOptions{
		Checkpoint:       CheckpointPolicy{MaxBytes: opts.MaxWALBytes},
		ScrubPagesPerSec: 200_000, // one tick covers the whole working set
		ProbeBackoff:     10 * time.Millisecond,
		Interval:         -1, // manual ticks under the injected clock
	}
	clk := &chaosClock{t: time.Unix(1_700_000_000, 0)}
	hook := &chaosWALFault{}
	ctx := context.Background()

	var rep ChaosSoakReport
	var committed []soakSeg
	replica, err := Open(Options{})
	if err != nil {
		return rep, err
	}
	defer func() { replica.Close() }()
	if err := rebuildFileWAL(path, walPath, committed, opts.BufferPages); err != nil {
		return rep, err
	}

	wrand := rand.New(rand.NewSource(opts.Seed))
	var nextID ObjectID
	var pendingAsync [][]soakSeg
	for cycle := 0; cycle < opts.Cycles; cycle++ {
		rep.Cycles++

		// Recovery phase: reopen, replay, reconcile, compare.
		db, fs, faults, rrep, err := openChaos(path, walPath, opts.BufferPages, mopts, clk.Now, hook.fault)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: reopen: %w", cycle, err)
		}
		if !rrep.WALArmed {
			return rep, fmt.Errorf("cycle %d: reopen did not arm the wal sidecar", cycle)
		}
		rep.RecordsReplayed += rrep.WALRecordsReplayed
		rep.UpdatesReplayed += rrep.WALUpdatesReplayed
		if rrep.WALTornTail {
			rep.TornTails++
		}
		survived, err := reconcileAsync(db, replica, &committed, pendingAsync)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		if survived < 0 {
			rep.LostAcked++
			survived = 0
		}
		rep.AsyncSurvived += survived
		pendingAsync = nil
		qrand := rand.New(rand.NewSource(opts.Seed ^ (int64(cycle)+1)*0x5DEECE66D))
		wrong, compared, err := compareAnswers(db, replica, qrand)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: query comparison: %w", cycle, err)
		}
		rep.WrongAnswers += wrong
		rep.QueriesCompared += compared

		// commitBatch applies one batch durably and mirrors it into the
		// replica — the write the soak's durability invariant covers.
		commitBatch := func(ups []MotionUpdate, batch []soakSeg) error {
			if err := db.ApplyUpdates(ctx, ups, WriteOptions{Durability: DurabilitySync}); err != nil {
				return err
			}
			committed = append(committed, batch...)
			for _, s := range batch {
				if err := replica.Insert(s.id, s.seg); err != nil {
					return fmt.Errorf("replica insert: %w", err)
				}
			}
			return nil
		}
		// healLoop ticks the maintenance loop (faults already cleared)
		// until the recovery probe brings the database back read-write.
		healLoop := func() error {
			if !db.Degraded() {
				return nil
			}
			start := db.maint.probeCount.Load()
			for t := 0; db.Degraded() && t < opts.ProbeBudget; t++ {
				clk.Advance(500 * time.Millisecond) // past the max probe backoff
				db.maint.tick()
			}
			if db.Degraded() {
				db.maint.mu.Lock()
				last := db.maint.lastProbeErr
				db.maint.mu.Unlock()
				return fmt.Errorf("database did not heal within %d probe ticks (last probe error %q)",
					opts.ProbeBudget, last)
			}
			if probes := int(db.maint.probeCount.Load() - start); probes > rep.MaxProbesToHeal {
				rep.MaxProbesToHeal = probes
			}
			return nil
		}
		// noteFaultErr checks a fault-episode write failure for its typed
		// sentinel; anything untyped is a satellite contract violation.
		noteFaultErr := func(err error) {
			rep.DiskFullWrites++
			if !errors.Is(err, ErrDiskFull) && !errors.Is(err, ErrReadOnly) {
				rep.UntypedWriteErrors++
			}
		}

		// Acknowledged write phase: concurrent batches, group-committed.
		acked := make([][]soakSeg, opts.AckedBatches)
		ackedUps := make([][]MotionUpdate, opts.AckedBatches)
		for i := range acked {
			acked[i] = genSoakBatch(wrand, opts.Batch, &nextID)
			ackedUps[i] = toUpdates(acked[i])
			if wrand.Intn(3) == 0 {
				ackedUps[i] = withChurn(ackedUps[i])
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, opts.Writers)
		for w := 0; w < opts.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ackedUps); i += opts.Writers {
					d := DurabilityGroupCommit
					if i%5 == 4 {
						d = DurabilitySync
					}
					if err := db.ApplyUpdates(ctx, ackedUps[i], WriteOptions{Durability: d}); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return rep, fmt.Errorf("cycle %d: acked batch: %w", cycle, err)
			}
		}
		rep.BatchesAcked += len(acked)
		for _, b := range acked {
			committed = append(committed, b...)
			for _, s := range b {
				if err := replica.Insert(s.id, s.seg); err != nil {
					return rep, fmt.Errorf("cycle %d: replica insert: %w", cycle, err)
				}
			}
		}

		// The soak never calls Sync itself: one maintenance tick must keep
		// the log under the checkpoint policy's byte cap.
		clk.Advance(defaultMaintInterval)
		db.maint.tick()
		if db.wal.LiveBytes() >= opts.MaxWALBytes {
			rep.WALBoundViolations++
		}

		// Fault episode, on a rotating schedule.
		switch cycle % 5 {
		case 1: // sticky disk-full on the log volume
			hook.sticky.Store(true)
			degraded := false
			for i := 0; i < 8 && !degraded; i++ {
				b := genSoakBatch(wrand, opts.Batch, &nextID)
				err := db.ApplyUpdates(ctx, toUpdates(b), WriteOptions{Durability: DurabilitySync})
				if err == nil {
					hook.sticky.Store(false)
					return rep, fmt.Errorf("cycle %d: durable write succeeded with the log volume full", cycle)
				}
				noteFaultErr(err)
				degraded = db.Degraded()
			}
			if !degraded {
				hook.sticky.Store(false)
				return rep, fmt.Errorf("cycle %d: database did not degrade under a full log volume", cycle)
			}
			rep.DiskFullEpisodes++
			rep.Degradations++
			// The gate must refuse further writes with the typed sentinel.
			if err := db.ApplyUpdates(ctx, toUpdates(genSoakBatch(wrand, 1, &nextID)), WriteOptions{}); !errors.Is(err, ErrReadOnly) {
				rep.UntypedWriteErrors++
			}
			hook.sticky.Store(false) // space returns
			if err := healLoop(); err != nil {
				return rep, fmt.Errorf("cycle %d: %w", cycle, err)
			}
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			if err := commitBatch(toUpdates(b), b); err != nil {
				return rep, fmt.Errorf("cycle %d: post-heal durable write: %w", cycle, err)
			}

		case 2: // transient disk-full spike on the log volume
			hook.burst.Store(1)
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			ups := toUpdates(b)
			err := db.ApplyUpdates(ctx, ups, WriteOptions{Durability: DurabilitySync})
			if err == nil {
				return rep, fmt.Errorf("cycle %d: transient log fault did not fire", cycle)
			}
			noteFaultErr(err)
			rep.TransientFaults++
			if db.Degraded() {
				return rep, fmt.Errorf("cycle %d: one transient failure tripped read-only (threshold is 2)", cycle)
			}
			// Space came back on its own; the same batch must now commit.
			if err := commitBatch(ups, b); err != nil {
				return rep, fmt.Errorf("cycle %d: retry after transient fault: %w", cycle, err)
			}

		case 3: // sticky disk-full on the page-store volume
			faults.ArmNoSpace(1, true)
			err := db.Sync()
			if err == nil {
				faults.DisarmNoSpace()
				return rep, fmt.Errorf("cycle %d: checkpoint succeeded with the page volume full", cycle)
			}
			noteFaultErr(err)
			if !db.Degraded() {
				faults.DisarmNoSpace()
				return rep, fmt.Errorf("cycle %d: failed checkpoint with WAL armed did not degrade", cycle)
			}
			rep.DiskFullEpisodes++
			rep.Degradations++
			faults.DisarmNoSpace() // space returns
			if err := healLoop(); err != nil {
				return rep, fmt.Errorf("cycle %d: %w", cycle, err)
			}
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			if err := commitBatch(toUpdates(b), b); err != nil {
				return rep, fmt.Errorf("cycle %d: post-heal durable write: %w", cycle, err)
			}

		case 4: // transient disk-full spike on the page-store volume
			faults.ArmNoSpace(1, false)
			err := db.Sync()
			if err == nil {
				return rep, fmt.Errorf("cycle %d: transient page fault did not fire", cycle)
			}
			noteFaultErr(err)
			rep.TransientFaults++
			// A failed checkpoint with a WAL armed degrades immediately
			// (the log cannot be allowed to grow behind silent retries);
			// the probe must bring it back.
			if !db.Degraded() {
				return rep, fmt.Errorf("cycle %d: failed checkpoint with WAL armed did not degrade", cycle)
			}
			rep.Degradations++
			if err := healLoop(); err != nil {
				return rep, fmt.Errorf("cycle %d: %w", cycle, err)
			}
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			if err := commitBatch(toUpdates(b), b); err != nil {
				return rep, fmt.Errorf("cycle %d: post-heal durable write: %w", cycle, err)
			}
		}

		// Scrub phase: a full pass over the committed tree, with every
		// fault disarmed, must find nothing.
		if opts.ScrubEvery > 0 && cycle%opts.ScrubEvery == 0 {
			passes := db.maint.scrubPassCount.Load()
			for t := 0; t < 50 && db.maint.scrubPassCount.Load() == passes; t++ {
				clk.Advance(defaultMaintInterval)
				db.maint.tick()
			}
			if db.maint.scrubPassCount.Load() == passes {
				return rep, fmt.Errorf("cycle %d: scrub pass did not complete", cycle)
			}
			if c := db.maint.scrubCorruptCount.Load(); c > 0 {
				rep.ScrubCorruptions += int(c)
				return rep, fmt.Errorf("cycle %d: scrub reported %d corruptions on clean data", cycle, c)
			}
		}

		// Fold this open's maintenance counters into the report.
		rep.AutoCheckpoints += int(db.maint.autoCheckpoints.Load())
		rep.CheckpointFailures += int(db.maint.checkpointFailures.Load())
		rep.Probes += int(db.maint.probeCount.Load())
		rep.Heals += int(db.maint.heals.Load())
		rep.ScrubPasses += int(db.maint.scrubPassCount.Load())
		rep.ScrubPages += int(db.maint.scrubPageCount.Load())

		// The durable boundary: every log byte on disk is fsync-covered
		// (the soak is quiescent), so the tear lands strictly beyond it.
		ackedSize, err := fileSize(walPath)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: %w", cycle, err)
		}

		// Async tail: appended, applied in memory, never awaited.
		for i := 0; i < opts.AsyncBatches; i++ {
			b := genSoakBatch(wrand, opts.Batch, &nextID)
			if err := db.ApplyUpdates(ctx, toUpdates(b), WriteOptions{Durability: DurabilityAsync}); err != nil {
				return rep, fmt.Errorf("cycle %d: async batch: %w", cycle, err)
			}
			pendingAsync = append(pendingAsync, b)
		}
		rep.BatchesAsync += len(pendingAsync)

		if err := chaosCrash(db, fs); err != nil {
			return rep, fmt.Errorf("cycle %d: crash: %w", cycle, err)
		}
		torn, err := tearWALTail(walPath, ackedSize, wrand)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: tear: %w", cycle, err)
		}
		if torn {
			rep.Tears++
		}

		if len(committed) >= opts.MaxSegments {
			committed = committed[:0]
			pendingAsync = nil
			replica.Close()
			if replica, err = Open(Options{}); err != nil {
				return rep, err
			}
			if err := rebuildFileWAL(path, walPath, committed, opts.BufferPages); err != nil {
				return rep, err
			}
			rep.Rotations++
		}
		if opts.Log != nil && (cycle+1)%10 == 0 {
			opts.Log("chaos soak cycle %d/%d: %s", cycle+1, opts.Cycles, rep)
		}
	}
	return rep, nil
}
