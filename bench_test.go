// Benchmarks regenerating every figure of the paper's evaluation section
// (Figures 6-13), plus ablations of the design choices called out in
// DESIGN.md. Each figure benchmark runs the full overlap/range sweep of
// the corresponding figure on a scaled-down population and reports the
// headline per-query costs as custom metrics; cmd/dqbench prints the full
// tables, and EXPERIMENTS.md records a paper-vs-measured comparison.
//
// Run a single figure:  go test -bench=Fig06 -benchmem
// Run everything:       go test -bench=. -benchmem
package dynq_test

import (
	"math/rand"
	"sync"
	"testing"

	"dynq/internal/bench"
	"dynq/internal/core"
	"dynq/internal/geom"
	"dynq/internal/motion"
	"dynq/internal/pager"
	"dynq/internal/psi"
	"dynq/internal/quadtree"
	"dynq/internal/rtree"
	"dynq/internal/stats"
	"dynq/internal/workload"
)

// benchConfig keeps figure benchmarks laptop-fast (≈1/10 of the paper's
// population, ≈50k segments) while preserving every qualitative shape.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.1, Trajectories: 10, Seed: 1}
}

var (
	idxOnce   [2]sync.Once
	idxCached [2]*bench.Index
	idxErr    [2]error
)

// sharedIndex builds (once per temporal layout) the index all figure
// benchmarks run against.
func sharedIndex(b *testing.B, dual bool) *bench.Index {
	k := 0
	if dual {
		k = 1
	}
	idxOnce[k].Do(func() {
		idxCached[k], idxErr[k] = bench.BuildIndex(benchConfig(), dual)
	})
	if idxErr[k] != nil {
		b.Fatal(idxErr[k])
	}
	return idxCached[k]
}

// benchFigure runs one figure's full sweep per iteration and reports the
// headline metrics: per-query cost of subsequent snapshots at 90% overlap
// for each strategy in the figure (reads for "io" figures, distance
// computations for "cpu" figures).
func benchFigure(b *testing.B, fig bench.Figure) {
	spec, err := bench.SpecFor(fig)
	if err != nil {
		b.Fatal(err)
	}
	ix := sharedIndex(b, spec.DualTime)
	var cells []bench.Cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err = bench.RunFigureOn(ix, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, c := range cells {
		if c.Overlap != 0.9 || c.Range != spec.Ranges[len(spec.Ranges)-1] {
			continue
		}
		switch spec.Metric {
		case "io":
			b.ReportMetric(c.Subseq.Reads(), string(c.Strategy)+"-reads/query")
		case "cpu":
			b.ReportMetric(c.Subseq.DistanceComps, string(c.Strategy)+"-dist/query")
		}
	}
}

func BenchmarkFig06PDQIO(b *testing.B)       { benchFigure(b, 6) }
func BenchmarkFig07PDQCPU(b *testing.B)      { benchFigure(b, 7) }
func BenchmarkFig08PDQSizeIO(b *testing.B)   { benchFigure(b, 8) }
func BenchmarkFig09PDQSizeCPU(b *testing.B)  { benchFigure(b, 9) }
func BenchmarkFig10NPDQIO(b *testing.B)      { benchFigure(b, 10) }
func BenchmarkFig11NPDQCPU(b *testing.B)     { benchFigure(b, 11) }
func BenchmarkFig12NPDQSizeIO(b *testing.B)  { benchFigure(b, 12) }
func BenchmarkFig13NPDQSizeCPU(b *testing.B) { benchFigure(b, 13) }

// --- Ablations -----------------------------------------------------------

func ablationEntries(b *testing.B, n int) []rtree.LeafEntry {
	b.Helper()
	sim := motion.PaperConfig()
	sim.Objects = n / 100 // ≈100 segments per object
	if sim.Objects < 1 {
		sim.Objects = 1
	}
	segs, err := motion.GenerateSegments(sim)
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]rtree.LeafEntry, len(segs))
	for i, s := range segs {
		entries[i] = rtree.LeafEntry{ID: rtree.ObjectID(s.ObjID), Seg: s.Seg}
	}
	return entries
}

// Split-policy ablation: insertion cost and query quality of the three
// split algorithms.
func benchSplit(b *testing.B, policy rtree.SplitPolicy) {
	entries := ablationEntries(b, 20000)
	b.ResetTimer()
	var tree *rtree.Tree
	for i := 0; i < b.N; i++ {
		cfg := rtree.DefaultConfig()
		cfg.Split = policy
		var err error
		tree, err = rtree.New(cfg, pager.NewMemStore())
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			if err := tree.Insert(e.ID, e.Seg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	var c stats.Counters
	for k := 0; k < 20; k++ {
		lo := float64(k * 4 % 80)
		if _, err := tree.RangeSearch(
			geom.Box{{Lo: lo, Hi: lo + 8}, {Lo: lo, Hi: lo + 8}},
			geom.Interval{Lo: 50, Hi: 50.5}, rtree.SearchOptions{}, &c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Snapshot().Reads())/20, "reads/query")
}

func BenchmarkAblationSplitQuadratic(b *testing.B) { benchSplit(b, rtree.SplitQuadratic) }
func BenchmarkAblationSplitLinear(b *testing.B)    { benchSplit(b, rtree.SplitLinear) }
func BenchmarkAblationSplitRStar(b *testing.B)     { benchSplit(b, rtree.SplitRStarAxis) }

// Leaf-exactness ablation: the NSI leaf optimization (exact segment test)
// versus bounding-box-only leaves, measured as false admissions shipped.
func BenchmarkAblationLeafExact(b *testing.B) {
	ix := sharedIndex(b, false)
	win := geom.Box{{Lo: 30, Hi: 38}, {Lo: 30, Hi: 38}}
	tw := geom.Interval{Lo: 40, Hi: 40.5}
	var exactN, looseN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c stats.Counters
		exact, err := ix.Tree.RangeSearch(win, tw, rtree.SearchOptions{}, &c)
		if err != nil {
			b.Fatal(err)
		}
		loose, err := ix.Tree.RangeSearch(win, tw, rtree.SearchOptions{BBOnlyLeaf: true}, &c)
		if err != nil {
			b.Fatal(err)
		}
		exactN, looseN = len(exact), len(loose)
	}
	b.ReportMetric(float64(exactN), "exact-results")
	b.ReportMetric(float64(looseN-exactN), "false-admissions")
}

// Server-side LRU ablation. A big enough per-session LRU does let naive
// evaluation approach PDQ's disk reads — but that is exactly the paper's
// point (Section 4): the server pays a large per-session buffer (hurting
// multi-session capacity) and still re-ships every visible object every
// frame, while PDQ needs no server buffer and ships each object once.
// Report the per-query misses at small and large buffer sizes, PDQ's
// bufferless reads, and the objects shipped by each strategy.
func BenchmarkAblationNaiveLRU(b *testing.B) {
	entries := ablationEntries(b, 50000)
	bulk, err := rtree.BulkLoad(rtree.DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		b.Fatal(err)
	}
	q := workload.PaperQuery(0.9, 8)
	var smallMisses, largeMisses, pdqReads, naiveShipped, pdqShipped float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := workload.Generate(q, newRand(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		frames := float64(len(g.Windows))
		for _, bufPages := range []int{16, 256} {
			if err := bulk.UseBuffer(bufPages); err != nil {
				b.Fatal(err)
			}
			var c stats.Counters
			naive := core.NewNaive(bulk, rtree.SearchOptions{}, &c)
			for k := range g.Windows {
				if _, err := naive.Snapshot(g.Windows[k], g.Times[k]); err != nil {
					b.Fatal(err)
				}
			}
			miss := float64(bulk.Pool().Misses()) / frames
			if bufPages == 16 {
				smallMisses = miss
			} else {
				largeMisses = miss
				naiveShipped = float64(c.Snapshot().Results) / frames
			}
		}
		if err := bulk.UseBuffer(0); err != nil {
			b.Fatal(err)
		}
		var c2 stats.Counters
		pdq, err := core.NewPDQ(bulk, g.Traj, core.PDQOptions{}, &c2)
		if err != nil {
			b.Fatal(err)
		}
		for k := range g.Windows {
			if _, err := pdq.Drain(g.Times[k].Lo, g.Times[k].Hi); err != nil {
				b.Fatal(err)
			}
		}
		pdq.Close()
		pdqReads = float64(c2.Snapshot().Reads()) / frames
		pdqShipped = float64(c2.Snapshot().Results) / frames
	}
	b.ReportMetric(smallMisses, "naiveLRU16-misses/query")
	b.ReportMetric(largeMisses, "naiveLRU256-misses/query")
	b.ReportMetric(pdqReads, "pdq-nobuffer-reads/query")
	b.ReportMetric(naiveShipped, "naive-objects-shipped/query")
	b.ReportMetric(pdqShipped, "pdq-objects-shipped/query")
}

// Dual-axes ablation: NPDQ pruning power under the two temporal layouts,
// as the reads ratio against each layout's own naive baseline.
func BenchmarkAblationDualAxes(b *testing.B) {
	var ratios [2]float64
	for li, dual := range []bool{false, true} {
		ix := sharedIndex(b, dual)
		var nq, na float64
		for i := 0; i < b.N; i++ {
			cN, err := ix.RunCell(bench.StratNPDQ, 0.9, 8)
			if err != nil {
				b.Fatal(err)
			}
			cB, err := ix.RunCell(bench.StratNaive, 0.9, 8)
			if err != nil {
				b.Fatal(err)
			}
			nq, na = cN.Subseq.Reads(), cB.Subseq.Reads()
		}
		if na > 0 {
			ratios[li] = nq / na
		}
	}
	b.ReportMetric(ratios[0], "single-axis-ratio")
	b.ReportMetric(ratios[1], "dual-axis-ratio")
}

// Dedup ablation: NPDQ's geometric segment-level suppression versus the
// exact id-set (TrackIDs) suppression, in results shipped per query.
func BenchmarkAblationNPDQDedup(b *testing.B) {
	ix := sharedIndex(b, true)
	q := workload.PaperQuery(0.9, 8)
	var geo, ids float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := workload.Generate(q, newRand(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		for mode := 0; mode < 2; mode++ {
			var c stats.Counters
			nq := core.NewNPDQ(ix.Tree, core.NPDQOptions{TrackIDs: mode == 1}, &c)
			total := 0
			for k := range g.Windows {
				rs, err := nq.Next(g.Windows[k], g.Times[k])
				if err != nil {
					b.Fatal(err)
				}
				total += len(rs)
			}
			v := float64(total) / float64(len(g.Windows))
			if mode == 0 {
				geo = v
			} else {
				ids = v
			}
		}
	}
	b.ReportMetric(geo, "geometric-results/query")
	b.ReportMetric(ids, "trackids-results/query")
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// PSI-vs-NSI ablation: the Section 2 comparison the paper inherits from
// [14,15] — Native Space Indexing should beat Parametric Space Indexing
// on spatio-temporal range queries due to PSI's loss of locality.
func BenchmarkAblationPSIvsNSI(b *testing.B) {
	entries := ablationEntries(b, 50000)
	psiIx, err := psi.BulkLoad(2, pager.NewMemStore(), entries)
	if err != nil {
		b.Fatal(err)
	}
	nsiIx, err := rtree.BulkLoad(rtree.DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		b.Fatal(err)
	}
	var psiReads, nsiReads float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newRand(int64(i))
		var cP, cN stats.Counters
		const queries = 50
		for k := 0; k < queries; k++ {
			lo0, lo1 := r.Float64()*90, r.Float64()*90
			spatial := geom.Box{{Lo: lo0, Hi: lo0 + 8}, {Lo: lo1, Hi: lo1 + 8}}
			start := r.Float64() * 99
			tw := geom.Interval{Lo: start, Hi: start + 0.5}
			if _, err := psiIx.RangeSearch(spatial, tw, &cP); err != nil {
				b.Fatal(err)
			}
			if _, err := nsiIx.RangeSearch(spatial, tw, rtree.SearchOptions{}, &cN); err != nil {
				b.Fatal(err)
			}
		}
		psiReads = float64(cP.Snapshot().Reads()) / queries
		nsiReads = float64(cN.Snapshot().Reads()) / queries
	}
	b.ReportMetric(psiReads, "psi-reads/query")
	b.ReportMetric(nsiReads, "nsi-reads/query")
}

// Mixed static+mobile NPDQ experiment: the situational-awareness scenario
// of the paper's introduction, where discardability prunes the static
// bulk of the data.
func BenchmarkMixedStaticNPDQ(b *testing.B) {
	cfg := bench.Config{Scale: 1, Trajectories: 8, Seed: 1}
	var nv, dq float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naive, npdq, err := bench.MixedExperiment(cfg, 200, 30000, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		nv, dq = naive.Subseq.Reads(), npdq.Subseq.Reads()
	}
	b.ReportMetric(nv, "naive-reads/query")
	b.ReportMetric(dq, "npdq-reads/query")
}

// Quadtree-vs-R-tree ablation: the related-work substrate ([21],[25])
// against the NSI R-tree on identical data and queries.
func BenchmarkAblationQuadtreeVsRTree(b *testing.B) {
	entries := ablationEntries(b, 50000)
	qt, err := quadtree.New(geom.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		if err := qt.Insert(e.ID, e.Seg); err != nil {
			b.Fatal(err)
		}
	}
	rt, err := rtree.BulkLoad(rtree.DefaultConfig(), pager.NewMemStore(), entries)
	if err != nil {
		b.Fatal(err)
	}
	var qReads, rReads float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newRand(int64(i))
		var cQ, cR stats.Counters
		const queries = 50
		for k := 0; k < queries; k++ {
			lo0, lo1 := r.Float64()*90, r.Float64()*90
			spatial := geom.Box{{Lo: lo0, Hi: lo0 + 8}, {Lo: lo1, Hi: lo1 + 8}}
			start := r.Float64() * 99
			tw := geom.Interval{Lo: start, Hi: start + 0.5}
			if _, err := qt.Search(spatial, tw, &cQ); err != nil {
				b.Fatal(err)
			}
			if _, err := rt.RangeSearch(spatial, tw, rtree.SearchOptions{}, &cR); err != nil {
				b.Fatal(err)
			}
		}
		qReads = float64(cQ.Snapshot().DistanceComps) / queries
		rReads = float64(cR.Snapshot().DistanceComps) / queries
	}
	b.ReportMetric(qReads, "quadtree-dist/query")
	b.ReportMetric(rReads, "rtree-dist/query")
}
