package dynq

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// stressSegment places a static object at a deterministic position
// derived from its id, visible over the whole test horizon.
func stressSegment(id ObjectID) Segment {
	x := float64(id%97) + 1
	y := float64(id%89) + 1
	return Segment{T0: 0, T1: 100, From: []float64{x, y}, To: []float64{x, y}}
}

// runMixedStress hammers one database with concurrent Snapshot/KNN
// readers and Insert writers, checking every intermediate answer for
// atomicity (only complete objects, never torn state) and the final
// state for equivalence with a serialized replay of the same inserts.
// Run under -race this doubles as the concurrency suite's memory-safety
// check for the whole read path.
func runMixedStress(t *testing.T, db, replay Database) {
	t.Helper()
	const (
		baseObjects = 100
		writers     = 4
		perWriter   = 50
		readers     = 4
		reads       = 40
	)
	view := Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}

	for i := 0; i < baseObjects; i++ {
		if err := db.Insert(ObjectID(i), stressSegment(ObjectID(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Writer w inserts ids 10000+w*1000+j; anything else in a snapshot is
	// a corruption.
	expected := func(id ObjectID) bool {
		return id < baseObjects || (id >= 10000 && id < 10000+writers*1000)
	}

	errCh := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				id := ObjectID(10000 + w*1000 + j)
				if err := db.Insert(id, stressSegment(id)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				rs, err := db.Snapshot(view, 0, 100)
				if err != nil {
					errCh <- err
					return
				}
				if len(rs) < baseObjects {
					errCh <- fmt.Errorf("snapshot lost base objects: %d < %d", len(rs), baseObjects)
					return
				}
				for _, res := range rs {
					if !expected(res.ID) {
						errCh <- fmt.Errorf("snapshot returned unknown object %d", res.ID)
						return
					}
				}
				nbs, err := db.KNN([]float64{50, 50}, 50, 5)
				if err != nil {
					errCh <- err
					return
				}
				if len(nbs) != 5 {
					errCh <- fmt.Errorf("KNN returned %d neighbors, want 5", len(nbs))
					return
				}
				for _, n := range nbs {
					if !expected(n.ID) {
						errCh <- fmt.Errorf("KNN returned unknown object %d", n.ID)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Serialized replay: the same population inserted one-by-one must
	// yield the identical final answer set.
	for i := 0; i < baseObjects; i++ {
		if err := replay.Insert(ObjectID(i), stressSegment(ObjectID(i))); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < perWriter; j++ {
			id := ObjectID(10000 + w*1000 + j)
			if err := replay.Insert(id, stressSegment(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := db.Snapshot(view, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want, err := replay.Snapshot(view, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(rs []Result) []ObjectID {
		out := make([]ObjectID, len(rs))
		for i, r := range rs {
			out[i] = r.ID
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	g, w := ids(got), ids(want)
	if len(g) != len(w) {
		t.Fatalf("concurrent run has %d objects, serialized replay has %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("object sets diverge at %d: %d vs %d", i, g[i], w[i])
		}
	}
}

func TestConcurrentMixedReadWrite(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	replay, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	runMixedStress(t, db, replay)
}

func TestConcurrentMixedReadWriteSharded(t *testing.T) {
	db, err := OpenSharded(ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	replay, err := OpenSharded(ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	runMixedStress(t, db, replay)
}

// TestConcurrentReadersBufferedFile drives concurrent readers over a
// file-backed, buffered index: the lock-sharded buffer pool is on the
// hot path here, so under -race this exercises its segment locking
// against real page traffic.
func TestConcurrentReadersBufferedFile(t *testing.T) {
	db, err := Open(Options{Path: t.TempDir() + "/stress.dqi", BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Insert(ObjectID(i), stressSegment(ObjectID(i))); err != nil {
			t.Fatal(err)
		}
	}
	view := Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}
	want, err := db.Snapshot(view, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rs, err := db.Snapshot(view, 0, 100)
				if err != nil {
					errCh <- err
					return
				}
				if len(rs) != len(want) {
					errCh <- fmt.Errorf("buffered snapshot returned %d, want %d", len(rs), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	bs := db.BufferStats()
	if bs.Hits+bs.Misses == 0 {
		t.Error("buffer pool saw no traffic; test is not exercising the sharded pool")
	}
	if len(db.BufferSegments()) == 0 {
		t.Error("no buffer segments reported")
	}
}
