package dynq

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func newTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func populate(t *testing.T, db *DB, n int, seed int64) map[ObjectID][]Segment {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	segs := map[ObjectID][]Segment{}
	for i := 0; i < n; i++ {
		id := ObjectID(i)
		tt := 0.0
		x, y := r.Float64()*100, r.Float64()*100
		for tt < 50 {
			dt := 0.5 + r.Float64()
			nx, ny := x+r.Float64()*2-1, y+r.Float64()*2-1
			seg := Segment{T0: tt, T1: tt + dt, From: []float64{x, y}, To: []float64{nx, ny}}
			segs[id] = append(segs[id], seg)
			if err := db.Insert(id, seg); err != nil {
				t.Fatal(err)
			}
			x, y, tt = nx, ny, tt+dt
		}
	}
	return segs
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{Split: "bogus"}); err == nil {
		t.Error("bad split policy should be rejected")
	}
	if _, err := Open(Options{Dims: 99}); err == nil {
		t.Error("bad dims should be rejected")
	}
}

func TestInsertSnapshotRoundTrip(t *testing.T) {
	db := newTestDB(t, Options{})
	populate(t, db, 50, 1)
	if db.Len() == 0 || db.Dims() != 2 {
		t.Fatalf("len=%d dims=%d", db.Len(), db.Dims())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// The random walk can drift outside [0,100]; query a superset box.
	res, err := db.Snapshot(Rect{Min: []float64{-100, -100}, Max: []float64{200, 200}}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != db.Len() {
		t.Errorf("whole-world snapshot found %d of %d", len(res), db.Len())
	}
	cost := db.Cost()
	if cost.DiskReads == 0 || cost.Results == 0 {
		t.Errorf("cost accounting empty: %+v", cost)
	}
	db.ResetCost()
	if db.Cost() != (CostReport{}) {
		t.Error("ResetCost should zero the report")
	}
	// Bad geometry rejected.
	if err := db.Insert(1, Segment{T0: 1, T1: 0, From: []float64{0, 0}, To: []float64{1, 1}}); err == nil {
		t.Error("inverted times should be rejected")
	}
	if err := db.Insert(1, Segment{T0: 0, T1: 1, From: []float64{0}, To: []float64{1, 1}}); err == nil {
		t.Error("wrong dims should be rejected")
	}
	if _, err := db.Snapshot(Rect{Min: []float64{0}, Max: []float64{1}}, 0, 1); err == nil {
		t.Error("wrong rect dims should be rejected")
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t, Options{})
	seg := Segment{T0: 1, T1: 2, From: []float64{5, 5}, To: []float64{6, 6}}
	if err := db.Insert(9, seg); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(9, 1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := db.Delete(9, 1); err != ErrNotFound {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
	if db.Len() != 0 {
		t.Errorf("len = %d after delete", db.Len())
	}
}

func TestBulkLoadAndStats(t *testing.T) {
	db := newTestDB(t, Options{})
	r := rand.New(rand.NewSource(2))
	segs := map[ObjectID][]Segment{}
	for i := 0; i < 200; i++ {
		id := ObjectID(i)
		for k := 0; k < 20; k++ {
			t0 := float64(k)
			x, y := r.Float64()*100, r.Float64()*100
			segs[id] = append(segs[id], Segment{
				T0: t0, T1: t0 + 1,
				From: []float64{x, y}, To: []float64{x + 1, y + 1},
			})
		}
	}
	if err := db.BulkLoad(segs); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4000 {
		t.Fatalf("len = %d", db.Len())
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LeafFanout != 127 || st.IntFanout != 145 {
		t.Errorf("fanouts = %d/%d, want 127/145", st.LeafFanout, st.IntFanout)
	}
	if st.Segments != 4000 || st.LeafNodes == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Bulk load on a non-empty database is refused.
	if err := db.BulkLoad(segs); err == nil {
		t.Error("bulk load over existing data should be refused")
	}
}

func TestPredictiveSessionAgainstSnapshots(t *testing.T) {
	db := newTestDB(t, Options{})
	populate(t, db, 100, 3)
	waypoints := []Waypoint{
		{T: 5, View: Rect{Min: []float64{10, 10}, Max: []float64{30, 30}}},
		{T: 25, View: Rect{Min: []float64{50, 50}, Max: []float64{70, 70}}},
	}
	sess, err := db.PredictiveQuery(waypoints, PredictiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	view := NewViewCache()
	// Walk the trajectory frame by frame; at each frame the cache must
	// hold exactly the objects a fresh snapshot at that frame would find
	// (modulo exact-boundary grazing).
	for f := 0; f <= 100; f++ {
		t0 := 5 + float64(f)*0.2
		t1 := t0 + 0.2
		if t1 > 25 {
			break
		}
		res, err := sess.Fetch(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		view.Apply(res)
		view.Advance(t0)
		// Interpolated window at time t0.
		frac := (t0 - 5) / 20
		lo := 10 + 40*frac
		snap, err := db.Snapshot(Rect{
			Min: []float64{lo, lo},
			Max: []float64{lo + 20, lo + 20},
		}, t0, t0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snap {
			if _, ok := view.Get(s.ID); !ok {
				// Tolerate boundary-degenerate matches (zero-length
				// episodes at the frame edge).
				if s.Disappear-s.Appear < 1e-9 {
					continue
				}
				t.Fatalf("frame t=%g: object %d visible per snapshot but absent from PDQ cache", t0, s.ID)
			}
		}
	}
}

func TestNonPredictiveSessionIncrementalUnion(t *testing.T) {
	db := newTestDB(t, Options{DualTimeAxes: true})
	populate(t, db, 100, 4)
	sess := db.NonPredictiveQuery(NonPredictiveOptions{})
	seen := map[ObjectID]bool{}
	var lastCount int
	for f := 0; f < 30; f++ {
		x := 10 + float64(f)*0.5
		t0 := 5 + float64(f)*0.3
		res, err := sess.Snapshot(Rect{Min: []float64{x, 20}, Max: []float64{x + 15, 35}}, t0, t0+0.3)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			seen[r.ID] = true
		}
		lastCount = len(res)
	}
	if len(seen) == 0 {
		t.Fatal("session never returned anything")
	}
	_ = lastCount
	// Reset, identical snapshot returns full answer.
	sess.Reset()
	full, err := sess.Snapshot(Rect{Min: []float64{10, 20}, Max: []float64{25, 35}}, 5, 5.3)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sess.Snapshot(Rect{Min: []float64{10, 20}, Max: []float64{25, 35}}, 5, 5.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 && len(full) > 0 {
		t.Errorf("repeated identical snapshot returned %d new results", len(again))
	}
}

func TestSPDQSlackSupersetAndKNN(t *testing.T) {
	db := newTestDB(t, Options{})
	populate(t, db, 100, 5)
	waypoints := []Waypoint{
		{T: 5, View: Rect{Min: []float64{20, 20}, Max: []float64{30, 30}}},
		{T: 15, View: Rect{Min: []float64{40, 20}, Max: []float64{50, 30}}},
	}
	exact, err := db.PredictiveQuery(waypoints, PredictiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	slack, err := db.PredictiveQuery(waypoints, PredictiveOptions{
		Slack: func(float64) float64 { return 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slack.Close()
	a, err := exact.Fetch(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := slack.Fetch(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < len(a) {
		t.Errorf("SPDQ returned fewer results (%d) than exact PDQ (%d)", len(b), len(a))
	}
	// kNN sanity: results sorted by distance, correct count.
	nbs, err := db.KNN([]float64{50, 50}, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 7 {
		t.Fatalf("kNN returned %d, want 7", len(nbs))
	}
	if !sort.SliceIsSorted(nbs, func(i, j int) bool { return nbs[i].Dist < nbs[j].Dist }) {
		t.Error("kNN results not sorted by distance")
	}
}

func TestViewCache(t *testing.T) {
	v := NewViewCache()
	v.Apply([]Result{
		{ID: 1, Disappear: 10},
		{ID: 2, Disappear: 5},
	})
	if v.Len() != 2 {
		t.Fatalf("len = %d", v.Len())
	}
	gone := v.Advance(7)
	if len(gone) != 1 || gone[0].ID != 2 {
		t.Errorf("evicted = %v", gone)
	}
	if _, ok := v.Get(1); !ok {
		t.Error("object 1 should still be visible")
	}
	if vs := v.Visible(); len(vs) != 1 {
		t.Errorf("visible = %v", vs)
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db, err := Open(Options{Path: path, DualTimeAxes: true})
	if err != nil {
		t.Fatal(err)
	}
	segs := populate(t, db, 30, 6)
	wantLen := db.Len()
	res, err := db.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != wantLen {
		t.Fatalf("reopened len = %d, want %d", re.Len(), wantLen)
	}
	if re.Dims() != 2 {
		t.Errorf("reopened dims = %d", re.Dims())
	}
	res2, err := re.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != len(res) {
		t.Errorf("reopened snapshot found %d, want %d", len(res2), len(res))
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	// Coordinates survive at float32 precision.
	first := segs[0][0]
	found := false
	for _, r := range res2 {
		if r.ID == 0 && math.Abs(r.Segment.T0-float64(float32(first.T0))) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Error("object 0's first segment missing after reopen")
	}
	// OpenFile on garbage fails cleanly.
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("opening a missing file should fail")
	}
}

func TestBufferedDBCounts(t *testing.T) {
	db := newTestDB(t, Options{BufferPages: 1024})
	populate(t, db, 100, 7)
	db.ResetCost()
	view := Rect{Min: []float64{20, 20}, Max: []float64{40, 40}}
	if _, err := db.Snapshot(view, 10, 12); err != nil {
		t.Fatal(err)
	}
	first := db.Cost()
	if _, err := db.Snapshot(view, 10, 12); err != nil {
		t.Fatal(err)
	}
	second := db.Cost()
	// Node-level accounting (the paper's metric) is buffer-independent:
	// both queries charge the same reads.
	if second.DiskReads != 2*first.DiskReads {
		t.Errorf("reads %d then %d; node accounting should be equal per query",
			first.DiskReads, second.DiskReads-first.DiskReads)
	}
}

func TestPredictiveSessionNext(t *testing.T) {
	db := newTestDB(t, Options{})
	for i := 0; i < 5; i++ {
		err := db.Insert(ObjectID(i), Segment{
			T0: 0, T1: 10,
			From: []float64{float64(i * 2), 5}, To: []float64{float64(i * 2), 5},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sess, err := db.PredictiveQuery([]Waypoint{
		{T: 0, View: Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}},
		{T: 10, View: Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}},
	}, PredictiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	seen := 0
	for {
		r, err := sess.Next(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		if r.Appear > r.Disappear {
			t.Errorf("inverted episode: %+v", r)
		}
		seen++
	}
	if seen != 5 {
		t.Errorf("Next delivered %d results, want 5", seen)
	}
	// Exhausted session keeps returning nil without error.
	if r, err := sess.Next(0, 10); err != nil || r != nil {
		t.Errorf("drained session Next = %v, %v", r, err)
	}
}

// The whole stack works in 3-d (the paper's d "usually 2 or 3"): fanouts
// shrink with the extra dimension, queries and sessions behave the same.
func TestThreeDimensionalEndToEnd(t *testing.T) {
	db := newTestDB(t, Options{Dims: 3})
	if db.Dims() != 3 {
		t.Fatalf("dims = %d", db.Dims())
	}
	// A column of drones climbing at different rates.
	for i := 0; i < 20; i++ {
		err := db.Insert(ObjectID(i), Segment{
			T0: 0, T1: 20,
			From: []float64{50, 50, float64(i)},
			To:   []float64{50, 50, float64(i) + 10},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 3-d leaf entry = 8 + 8*4 = 40 bytes → (4096-16)/40 = 102.
	if st.LeafFanout != 102 {
		t.Errorf("3-d leaf fanout = %d, want 102", st.LeafFanout)
	}
	// Altitude-sliced snapshot: who is between z=5 and z=8 at t=0?
	res, err := db.Snapshot(Rect{
		Min: []float64{0, 0, 5},
		Max: []float64{100, 100, 8},
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 { // initial z ∈ {5,6,7,8}
		t.Errorf("altitude slice found %d, want 4: %v", len(res), res)
	}
	// A 3-d predictive session: the view frustum climbs with the drones.
	sess, err := db.PredictiveQuery([]Waypoint{
		{T: 0, View: Rect{Min: []float64{40, 40, 0}, Max: []float64{60, 60, 5}}},
		{T: 20, View: Rect{Min: []float64{40, 40, 10}, Max: []float64{60, 60, 15}}},
	}, PredictiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.Fetch(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("3-d predictive session returned nothing")
	}
	// 3-d kNN.
	nbs, err := db.KNN([]float64{50, 50, 0}, 10, 3)
	if err != nil || len(nbs) != 3 {
		t.Fatalf("3-d knn = %v, %v", nbs, err)
	}
}
