package dynq

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"dynq/internal/pager"
)

// seedFile builds a committed file database with n segments and returns
// the path plus the committed sequence (for replica comparison).
func seedFile(t *testing.T, n int) (string, []soakSeg) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "recover.dynq")
	wrand := rand.New(rand.NewSource(21))
	var nextID ObjectID
	segs := genSoakBatch(wrand, n, &nextID)
	if err := rebuildFile(path, segs, 0); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return path, segs
}

func TestOpenFileRecoverCleanFile(t *testing.T) {
	path, segs := seedFile(t, 300)
	db, rep, err := OpenFileRecover(path)
	if err != nil {
		t.Fatalf("recover clean file: %v", err)
	}
	defer db.Close()
	if rep.Segments != len(segs) {
		t.Fatalf("report counts %d segments, want %d", rep.Segments, len(segs))
	}
	if rep.PagesChecked != rep.LeafPages+rep.InternalPages {
		t.Fatalf("page partition inconsistent: %s", rep)
	}
	if rep.TornHeaderRepaired || rep.FreeListRebuilt {
		t.Fatalf("clean file reported repairs: %s", rep)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != len(segs) {
		t.Fatalf("recovered database holds %d segments, want %d", st.Segments, len(segs))
	}
}

// TestOpenFileRecoverDetectsBitRot flips one bit in a committed tree
// page; recovery must refuse to open with a typed error naming the
// corruption, not serve a silently wrong index.
func TestOpenFileRecoverDetectsBitRot(t *testing.T) {
	path, _ := seedFile(t, 300)
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 always exists in a non-empty tree; flip a data bit.
	if err := fs.FlipBit(0, 12345); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	_, _, err = OpenFileRecover(path)
	if err == nil {
		t.Fatal("bit rot went undetected")
	}
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, pager.ErrCorruptPage) {
		t.Fatalf("bit rot error not typed: %v", err)
	}
}

// TestOpenFileRecoverRebuildsFreeList simulates a crash between Alloc
// and commit by appending an orphan page record beyond the tree:
// recovery must fold it back into the free list and commit the repair.
func TestOpenFileRecoverRebuildsFreeList(t *testing.T) {
	path, segs := seedFile(t, 300)

	// Allocate and write a page, then commit — but never reference it
	// from the tree, leaving it neither reachable nor on the free chain.
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pager.PageSize)
	for i := range buf {
		buf[i] = 0xAB
	}
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil { // Close syncs: the orphan is committed
		t.Fatal(err)
	}

	db, rep, err := OpenFileRecover(path)
	if err != nil {
		t.Fatalf("recovery should repair an orphan page, got: %v", err)
	}
	defer db.Close()
	if !rep.FreeListRebuilt || rep.OrphanPages != 1 {
		t.Fatalf("expected a free-list rebuild with 1 orphan, got: %s", rep)
	}
	if rep.Segments != len(segs) {
		t.Fatalf("repair changed the data: %d segments, want %d", rep.Segments, len(segs))
	}

	// The repair was committed: a second open is clean.
	db2, rep2, err := OpenFileRecover(path)
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	defer db2.Close()
	if rep2.FreeListRebuilt {
		t.Fatalf("free-list repair did not stick: %s", rep2)
	}
	if rep2.FreePages != 1 {
		t.Fatalf("orphan not on the free list after repair: %s", rep2)
	}
}

// TestOpenFileRecoverDetectsMetaMismatch corrupts the committed segment
// count; the tree walk must notice the disagreement.
func TestOpenFileRecoverDetectsMetaMismatch(t *testing.T) {
	path, _ := seedFile(t, 300)
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m, lsn, err := decodeMeta(fs.Aux())
	if err != nil {
		t.Fatal(err)
	}
	m.Size += 7
	if err := fs.SetAux(encodeMeta(m, lsn)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = OpenFileRecover(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment-count mismatch not detected as ErrCorrupt: %v", err)
	}
}

// TestOpenFileIsRecoveringOpen: the plain OpenFile entry point runs the
// same verification (it must not be a fast path around recovery).
func TestOpenFileIsRecoveringOpen(t *testing.T) {
	path, _ := seedFile(t, 100)
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipBit(0, 99); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := OpenFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenFile skipped verification: %v", err)
	}
}
