package dynq

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynq/internal/obs"
)

func seg2(t0, t1, x, y float64) Segment {
	return Segment{T0: t0, T1: t1, From: []float64{x, y}, To: []float64{x + 1, y + 1}}
}

func TestApplyUpdatesBatchSemantics(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Order matters: insert, delete, reinsert of the same object in one
	// batch must leave exactly one segment.
	batch := []MotionUpdate{
		{ID: 1, Segment: seg2(0, 10, 5, 5)},
		{ID: 2, Segment: seg2(0, 10, 20, 20)},
		{ID: 1, Segment: Segment{T0: 0}, Delete: true},
		{ID: 1, Segment: seg2(0, 10, 6, 6)},
	}
	if err := db.ApplyUpdates(context.Background(), batch, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d after batch, want 2", db.Len())
	}
	// Empty batch is a no-op.
	if err := db.ApplyUpdates(context.Background(), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	// Deleting a missing segment fails the batch with ErrNotFound.
	err = db.ApplyUpdates(context.Background(),
		[]MotionUpdate{{ID: 99, Segment: Segment{T0: 3}, Delete: true}}, WriteOptions{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete of missing segment: %v, want ErrNotFound", err)
	}
	// A bad update is rejected upfront, before anything applies.
	err = db.ApplyUpdates(context.Background(), []MotionUpdate{
		{ID: 3, Segment: seg2(0, 10, 1, 1)},
		{ID: 4, Segment: Segment{T0: 5, T1: 1, From: []float64{0, 0}, To: []float64{0, 0}}},
	}, WriteOptions{})
	if err == nil {
		t.Fatal("batch with an invalid segment was accepted")
	}
	if db.Len() != 2 {
		t.Fatalf("failed validation applied a prefix: Len = %d, want 2", db.Len())
	}
	// A canceled context is honored before the batch applies.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = db.ApplyUpdates(ctx, []MotionUpdate{{ID: 5, Segment: seg2(0, 1, 0, 0)}}, WriteOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v", err)
	}
}

func TestEncodeDecodeUpdatesRoundTrip(t *testing.T) {
	in := []MotionUpdate{
		{ID: 7, Segment: seg2(1, 2, 3, 4)},
		{ID: 8, Segment: Segment{T0: 2.5}, Delete: true},
		{ID: 9, Segment: seg2(0, 100, -5, 12.25)},
	}
	out, err := decodeUpdates(encodeUpdates(2, in), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Delete entries round-trip only ID and T0 by design.
	want := append([]MotionUpdate(nil), in...)
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, want)
	}
	// Dimensionality mismatch is rejected.
	if _, err := decodeUpdates(encodeUpdates(2, in), 3); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	// Truncation is rejected.
	b := encodeUpdates(2, in)
	if _, err := decodeUpdates(b[:len(b)-3], 2); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Trailing garbage is rejected.
	if _, err := decodeUpdates(append(b, 0xFF), 2); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// An inflated count claim is rejected by the minimum-size bound
	// before it can drive a huge pre-allocation.
	inflated := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(inflated[2:], uint32(len(inflated))) // > (len-6)/17, old bound passed it
	if _, err := decodeUpdates(inflated, 2); err == nil {
		t.Fatal("inflated update count accepted")
	}
}

// TestWALRecoverReplaysUnsyncedWrites is the core durability round trip:
// writes acknowledged at each durability level, a hard crash with no
// Sync, and a recovering open that must replay the log back to the
// exact same answers.
func TestWALRecoverReplaysUnsyncedWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.dynq")
	db, err := Open(Options{Path: path, WALPath: path + ".wal"})
	if err != nil {
		t.Fatal(err)
	}
	// A checkpointed base state.
	if err := db.Insert(1, seg2(0, 10, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes at each durability level, never synced to
	// the page file.
	writes := []struct {
		d  Durability
		id ObjectID
	}{
		{DurabilityGroupCommit, 2},
		{DurabilitySync, 3},
		{DurabilityAsync, 4},
		{DurabilityGroupCommit, 5},
	}
	for _, w := range writes {
		err := db.ApplyUpdates(context.Background(),
			[]MotionUpdate{{ID: w.id, Segment: seg2(0, 10, float64(w.id), float64(w.id))}},
			WriteOptions{Durability: w.d})
		if err != nil {
			t.Fatalf("write %d: %v", w.id, err)
		}
	}
	// And a delete, so replay exercises both directions.
	if err := db.DeleteCtx(context.Background(), 2, 0, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	// 6 appends: the pre-checkpoint base insert also logged before Sync
	// truncated it away, then 4 writes + 1 delete after the checkpoint.
	if st, ok := db.WALStats(); !ok || st.Appends != 6 {
		t.Fatalf("WALStats = %+v, %v; want 6 appends", st, ok)
	}
	if err := crashDB(db); err != nil {
		t.Fatal(err)
	}

	rdb, rep, err := OpenFileRecover(path)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	if !rep.WALArmed {
		t.Fatal("sidecar wal not auto-detected")
	}
	if rep.WALRecordsReplayed != 5 || rep.WALUpdatesReplayed != 5 {
		t.Fatalf("replayed %d records / %d updates, want 5/5 (%s)",
			rep.WALRecordsReplayed, rep.WALUpdatesReplayed, rep)
	}
	if rep.WALTornTail {
		t.Fatalf("clean crash reported a torn tail: %s", rep)
	}
	if rdb.Len() != 4 { // 1 base + 4 inserts - 1 delete
		t.Fatalf("recovered Len = %d, want 4", rdb.Len())
	}
	rs, err := rdb.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[ObjectID]bool{}
	for _, r := range rs {
		ids[r.ID] = true
	}
	if !ids[1] || ids[2] || !ids[3] || !ids[4] || !ids[5] {
		t.Fatalf("recovered answer wrong: %v", rs)
	}

	// The recovered database keeps logging: another write, another
	// crash, another exact recovery.
	if err := rdb.InsertCtx(context.Background(), 6, seg2(0, 10, 6, 6), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	if err := crashDB(rdb); err != nil {
		t.Fatal(err)
	}
	rdb2, rep2, err := OpenFileRecover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb2.Close()
	if rdb2.Len() != 5 {
		t.Fatalf("second recovery Len = %d, want 5 (%s)", rdb2.Len(), rep2)
	}
}

// TestWALCheckpointBoundsReplay: after Sync, the log is truncated and a
// crash replays only post-checkpoint records.
func TestWALCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.dynq")
	db, err := Open(Options{Path: path, WALPath: path + ".wal"})
	if err != nil {
		t.Fatal(err)
	}
	for i := ObjectID(1); i <= 8; i++ {
		if err := db.Insert(i, seg2(0, 10, float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(9, seg2(0, 10, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := crashDB(db); err != nil {
		t.Fatal(err)
	}
	rdb, rep, err := OpenFileRecover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if rep.WALRecordsReplayed != 1 {
		t.Fatalf("replayed %d records, want 1 (only the post-checkpoint insert): %s",
			rep.WALRecordsReplayed, rep)
	}
	if rdb.Len() != 9 {
		t.Fatalf("Len = %d, want 9", rdb.Len())
	}
}

// TestWALTornTailRecovery tears the final (unacknowledged) record and
// verifies recovery discards it, keeps everything acknowledged, and the
// next write sequence is clean.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.dynq")
	walPath := path + ".wal"
	db, err := Open(Options{Path: path, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertCtx(context.Background(), 1, seg2(0, 10, 1, 1), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	acked, err := fileSize(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// An async write the crash will tear mid-record.
	if err := db.InsertCtx(context.Background(), 2, seg2(0, 10, 2, 2), WriteOptions{Durability: DurabilityAsync}); err != nil {
		t.Fatal(err)
	}
	if err := crashDB(db); err != nil {
		t.Fatal(err)
	}
	total, err := fileSize(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if total <= acked {
		t.Fatalf("async append did not grow the log (%d <= %d)", total, acked)
	}
	f, err := os.OpenFile(walPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(total - 5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rdb, rep, err := OpenFileRecover(path)
	if err != nil {
		t.Fatalf("recover after torn tail: %v", err)
	}
	defer rdb.Close()
	if !rep.WALTornTail {
		t.Fatalf("torn tail not reported: %s", rep)
	}
	if rdb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (acked insert only)", rdb.Len())
	}
	// The torn bytes were discarded physically: a new write appends at
	// the clean boundary and survives the next crash.
	if err := rdb.InsertCtx(context.Background(), 3, seg2(0, 10, 3, 3), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	if err := crashDB(rdb); err != nil {
		t.Fatal(err)
	}
	rdb2, _, err := OpenFileRecover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb2.Close()
	if rdb2.Len() != 2 {
		t.Fatalf("post-tear write lost: Len = %d, want 2", rdb2.Len())
	}
}

// TestSyncFailureWithWALDegradesImmediately is the regression test for
// the Flush/Sync failure path: with a WAL armed, a failed checkpoint
// must journal a sync_failure event and trip read-only mode at once —
// not feed the consecutive-failure counter while the log grows.
func TestSyncFailureWithWALDegradesImmediately(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fail.dynq")
	if err := rebuildFile(path, nil, 0); err != nil {
		t.Fatal(err)
	}
	// A DB with a scripted FaultStore between tree and file, plus an
	// armed WAL — the configuration where a failed checkpoint must not
	// be retried silently.
	db, fs, faults, err := openFaulted(path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.health.after = 0 // default threshold, not the soak's "never"
	defer fs.Close()
	if err := db.armWAL(path+".wal", 0, nil); err != nil {
		t.Fatal(err)
	}
	defer db.wal.Close()
	if err := db.Insert(1, seg2(0, 10, 1, 1)); err != nil {
		t.Fatal(err)
	}
	faults.ArmSyncs(1)

	before := obs.DefaultJournal().Total()
	if err := db.Sync(); err == nil {
		t.Fatal("Sync with injected fault succeeded")
	}
	if !db.Degraded() {
		t.Fatal("database not degraded after one failed Sync with WAL armed")
	}
	if err := db.Insert(2, seg2(0, 10, 2, 2)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after degrade: %v, want ErrReadOnly", err)
	}
	found := false
	for _, e := range obs.DefaultJournal().Since(before) {
		if e.Type == obs.EventSyncFailure {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s event journaled by the failed checkpoint", obs.EventSyncFailure)
	}

	// Without a WAL the same single failure only feeds the
	// consecutive-failure counter; the database stays writable.
	path2 := filepath.Join(dir, "nowal.dynq")
	if err := rebuildFile(path2, nil, 0); err != nil {
		t.Fatal(err)
	}
	db2, fs2, faults2, err := openFaulted(path2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	db2.health.after = 0
	defer fs2.Close()
	if err := db2.Insert(1, seg2(0, 10, 1, 1)); err != nil {
		t.Fatal(err)
	}
	faults2.ArmSyncs(1)
	if err := db2.Sync(); err == nil {
		t.Fatal("Sync with injected fault succeeded")
	}
	if db2.Degraded() {
		t.Fatal("single Sync failure without WAL degraded immediately")
	}
}

// TestOpenShardedRejectsWAL: a sharded database has one log per shard,
// so the single-log WALPath knob must fail loudly (pointing at
// ShardOptions.WAL) rather than silently dropping durability.
func TestOpenShardedRejectsWAL(t *testing.T) {
	opts := ShardOptions{Shards: 2}
	opts.WALPath = "somewhere.wal"
	if _, err := OpenSharded(opts); err == nil {
		t.Fatal("OpenSharded accepted a WALPath")
	}
}

// TestWALSoakSmoke runs a short WALSoak as a unit test; the full run is
// dqbench -faults -wal.
func TestWALSoakSmoke(t *testing.T) {
	rep, err := WALSoak(WALSoakOptions{Cycles: 12, Seed: 7, Batch: 16, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("soak harness error: %v (%s)", err, rep)
	}
	if rep.LostAcked != 0 {
		t.Fatalf("acknowledged writes lost: %s", rep)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("wrong answers after replay: %s", rep)
	}
	if rep.Tears == 0 || rep.QueriesCompared == 0 {
		t.Fatalf("soak exercised nothing: %s", rep)
	}
}

// TestFailedBatchNotReplayed: a batch the caller saw fail with
// ErrNotFound must never be WAL-logged — crash recovery must not
// resurrect any part of it, or the durable state diverges from what was
// acknowledged.
func TestFailedBatchNotReplayed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faildel.dynq")
	db, err := Open(Options{Path: path, WALPath: path + ".wal"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := db.InsertCtx(ctx, 1, seg2(0, 10, 1, 1), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	// The delete of a missing segment fails the batch upfront: the
	// preceding insert in the same batch must not apply...
	err = db.ApplyUpdates(ctx, []MotionUpdate{
		{ID: 2, Segment: seg2(0, 10, 2, 2)},
		{ID: 3, Segment: Segment{T0: 5}, Delete: true},
	}, WriteOptions{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("batch with missing delete: %v, want ErrNotFound", err)
	}
	if db.Len() != 1 {
		t.Fatalf("failed batch applied a prefix: Len = %d, want 1", db.Len())
	}
	// ...and a double delete of the index's only copy fails the same way.
	err = db.ApplyUpdates(ctx, []MotionUpdate{
		{ID: 1, Segment: Segment{T0: 0}, Delete: true},
		{ID: 1, Segment: Segment{T0: 0}, Delete: true},
	}, WriteOptions{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if db.Len() != 1 {
		t.Fatalf("failed double delete applied a prefix: Len = %d, want 1", db.Len())
	}
	// A delete consuming an insert earlier in the same batch still passes.
	err = db.ApplyUpdates(ctx, []MotionUpdate{
		{ID: 4, Segment: seg2(0, 10, 4, 4)},
		{ID: 4, Segment: Segment{T0: 0}, Delete: true},
	}, WriteOptions{})
	if err != nil {
		t.Fatalf("in-batch insert+delete rejected: %v", err)
	}

	if err := crashDB(db); err != nil {
		t.Fatal(err)
	}
	rdb, rep, err := OpenFileRecover(path)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	// Replay sees the first insert and the in-batch insert+delete record
	// — nothing from the two failed batches.
	if rep.WALRecordsReplayed != 2 {
		t.Fatalf("replayed %d records, want 2 (%s)", rep.WALRecordsReplayed, rep)
	}
	if rdb.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1", rdb.Len())
	}
	rs, err := rdb.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != 1 {
		t.Fatalf("recovered answer = %v, want exactly object 1", rs)
	}
}
