package dynq

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randomPopulation generates nObj objects with contiguous piecewise-linear
// motion over t ∈ [0, ~duration] in a 100×100 space.
func randomPopulation(r *rand.Rand, nObj, segsPer int) map[ObjectID][]Segment {
	segs := make(map[ObjectID][]Segment, nObj)
	for id := 0; id < nObj; id++ {
		x, y := r.Float64()*100, r.Float64()*100
		t := r.Float64() * 2
		var list []Segment
		for s := 0; s < segsPer; s++ {
			dt := 0.5 + r.Float64()*1.5
			nx := x + (r.Float64()*4 - 2)
			ny := y + (r.Float64()*4 - 2)
			list = append(list, Segment{
				T0: t, T1: t + dt,
				From: []float64{x, y}, To: []float64{nx, ny},
			})
			x, y, t = nx, ny, t+dt
		}
		segs[ObjectID(id)] = list
	}
	return segs
}

// equivPair builds a single-tree DB and an N-shard ShardedDB over the
// same population.
func equivPair(t *testing.T, segs map[ObjectID][]Segment, shards int, bulk bool) (*DB, *ShardedDB) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	sdb, err := OpenSharded(ShardOptions{Shards: shards, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	if bulk {
		if err := db.BulkLoad(segs); err != nil {
			t.Fatal(err)
		}
		if err := sdb.BulkLoad(segs); err != nil {
			t.Fatal(err)
		}
	} else {
		for id, list := range segs {
			for _, s := range list {
				if err := db.Insert(id, s); err != nil {
					t.Fatal(err)
				}
				if err := sdb.Insert(id, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if db.Len() != sdb.Len() {
		t.Fatalf("population mismatch: %d vs %d segments", db.Len(), sdb.Len())
	}
	return db, sdb
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].ID != rs[j].ID {
			return rs[i].ID < rs[j].ID
		}
		if rs[i].Segment.T0 != rs[j].Segment.T0 {
			return rs[i].Segment.T0 < rs[j].Segment.T0
		}
		return rs[i].Appear < rs[j].Appear
	})
}

func sameResults(t *testing.T, label string, single, sharded []Result) {
	t.Helper()
	sortResults(single)
	sortResults(sharded)
	if len(single) != len(sharded) {
		t.Fatalf("%s: %d vs %d results", label, len(single), len(sharded))
	}
	for i := range single {
		a, b := single[i], sharded[i]
		if a.ID != b.ID || a.Segment.T0 != b.Segment.T0 || a.Appear != b.Appear || a.Disappear != b.Disappear {
			t.Fatalf("%s: result %d differs: %+v vs %+v", label, i, a, b)
		}
	}
}

func TestShardedSnapshotEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	segs := randomPopulation(r, 300, 12)
	for _, shards := range []int{1, 3, 7} {
		db, sdb := equivPair(t, segs, shards, true)
		for q := 0; q < 25; q++ {
			x, y := r.Float64()*80, r.Float64()*80
			w := 4 + r.Float64()*16
			t0 := r.Float64() * 15
			view := Rect{Min: []float64{x, y}, Max: []float64{x + w, y + w}}
			want, err := db.Snapshot(view, t0, t0+1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sdb.Snapshot(view, t0, t0+1)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "snapshot", want, got)
		}
	}
}

func TestShardedKNNEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	segs := randomPopulation(r, 250, 10)
	db, sdb := equivPair(t, segs, 5, true)
	for q := 0; q < 25; q++ {
		p := []float64{r.Float64() * 100, r.Float64() * 100}
		at := r.Float64() * 12
		k := 1 + r.Intn(15)
		want, err := db.KNN(p, at, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sdb.KNN(p, at, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("knn: %d vs %d neighbors", len(want), len(got))
		}
		// Both sides deliver ascending distance; normalize exact-tie order.
		byDist := func(ns []Neighbor) {
			sort.Slice(ns, func(i, j int) bool {
				if ns[i].Dist != ns[j].Dist {
					return ns[i].Dist < ns[j].Dist
				}
				return ns[i].ID < ns[j].ID
			})
		}
		byDist(want)
		byDist(got)
		for i := range want {
			if want[i].ID != got[i].ID || want[i].Dist != got[i].Dist {
				t.Fatalf("knn: rank %d differs: %v/%g vs %v/%g",
					i, want[i].ID, want[i].Dist, got[i].ID, got[i].Dist)
			}
		}
	}
}

// observer returns a moving-window trajectory and its frame decomposition.
func observer(frames int) (wps []Waypoint, views []Rect, times [][2]float64) {
	const w, step, dt = 18.0, 1.5, 0.4
	for f := 0; f <= frames; f++ {
		x := 5 + step*float64(f)
		view := Rect{Min: []float64{x, 20}, Max: []float64{x + w, 20 + w}}
		tf := float64(f) * dt
		if f < frames {
			views = append(views, view)
			times = append(times, [2]float64{tf, tf + dt})
		}
	}
	wps = []Waypoint{
		{T: 0, View: Rect{Min: []float64{5, 20}, Max: []float64{5 + w, 20 + w}}},
		{T: float64(frames) * dt, View: Rect{Min: []float64{5 + step*float64(frames), 20}, Max: []float64{5 + step*float64(frames) + w, 20 + w}}},
	}
	return wps, views, times
}

func TestShardedPredictiveEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	segs := randomPopulation(r, 300, 12)
	db, sdb := equivPair(t, segs, 4, true)
	wps, _, times := observer(20)

	single, err := db.PredictiveQuery(wps, PredictiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := sdb.PredictiveQuery(wps, PredictiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	total := 0
	for f, tw := range times {
		want, err := single.Fetch(tw[0], tw[1])
		if err != nil {
			t.Fatal(err)
		}
		got := collectShardedPDQ(t, sharded, tw[0], tw[1])
		sameResults(t, "pdq frame", want, got)
		total += len(want)
		_ = f
	}
	if total == 0 {
		t.Fatal("pdq equivalence vacuous: no results delivered")
	}
}

// collectShardedPDQ drains one window via Next, checking the appearance
// ordering contract along the way.
func collectShardedPDQ(t *testing.T, s *ShardedPredictiveSession, t0, t1 float64) []Result {
	t.Helper()
	var out []Result
	last := -1.0
	for {
		r, err := s.Next(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			return out
		}
		appear := r.Appear
		if appear < t0 {
			appear = t0
		}
		if appear < last {
			t.Fatalf("pdq stream out of appearance order: %g after %g", r.Appear, last)
		}
		last = appear
		out = append(out, *r)
	}
}

func TestShardedNonPredictiveEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	segs := randomPopulation(r, 300, 12)
	db, sdb := equivPair(t, segs, 4, true)
	_, views, times := observer(20)

	single := db.NonPredictiveQuery(NonPredictiveOptions{})
	sharded := sdb.NonPredictiveQuery(NonPredictiveOptions{})
	total := 0
	for f := range views {
		want, err := single.Snapshot(views[f], times[f][0], times[f][1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Snapshot(views[f], times[f][0], times[f][1])
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "npdq frame", want, got)
		total += len(want)
	}
	if total == 0 {
		t.Fatal("npdq equivalence vacuous: no results delivered")
	}

	// After a reset both sides deliver the full frame again.
	single.Reset()
	sharded.Reset()
	want, err := single.Snapshot(views[0], times[0][0], times[0][1])
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Snapshot(views[0], times[0][0], times[0][1])
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "npdq reset", want, got)
}

func TestShardedJoinAndCountEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	segs := randomPopulation(r, 120, 8)
	db, sdb := equivPair(t, segs, 3, false) // exercise the Insert path too

	want, err := db.Within(2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sdb.Within(2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	sortPairsAPI := func(ps []Pair) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].A != ps[j].A {
				return ps[i].A < ps[j].A
			}
			if ps[i].B != ps[j].B {
				return ps[i].B < ps[j].B
			}
			return ps[i].SegmentA.T0 < ps[j].SegmentA.T0
		})
	}
	sortPairsAPI(want)
	sortPairsAPI(got)
	if len(want) != len(got) {
		t.Fatalf("within: %d vs %d pairs", len(want), len(got))
	}
	for i := range want {
		if want[i].A != got[i].A || want[i].B != got[i].B || want[i].Dist != got[i].Dist {
			t.Fatalf("within: pair %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}

	wps, _, _ := observer(20)
	sample := []float64{0.5, 2, 4, 6, 7.5}
	wantCounts, err := db.CountSeries(wps, sample)
	if err != nil {
		t.Fatal(err)
	}
	gotCounts, err := sdb.CountSeries(wps, sample)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantCounts {
		if wantCounts[i] != gotCounts[i] {
			t.Fatalf("count series at t=%g: %d vs %d", sample[i], wantCounts[i], gotCounts[i])
		}
	}
}

func TestShardedStatsAndCost(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	segs := randomPopulation(r, 200, 10)
	_, sdb := equivPair(t, segs, 4, true)

	st, err := sdb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != sdb.Len() {
		t.Fatalf("aggregate stats count %d segments, Len says %d", st.Segments, sdb.Len())
	}
	per, err := sdb.StatsByShard()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range per {
		sum += s.Segments
	}
	if sum != st.Segments {
		t.Fatalf("per-shard segments sum to %d, aggregate says %d", sum, st.Segments)
	}
	if err := sdb.Validate(); err != nil {
		t.Fatal(err)
	}

	sdb.ResetCost()
	if _, err := sdb.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}, 0, 5); err != nil {
		t.Fatal(err)
	}
	total := sdb.Cost()
	if total.DiskReads == 0 || total.Results == 0 {
		t.Fatalf("aggregated cost not counting: %+v", total)
	}
	var perShard int64
	for i := 0; i < sdb.Shards(); i++ {
		perShard += sdb.ShardCost(i).DiskReads
	}
	if perShard != total.DiskReads {
		t.Fatalf("per-shard reads sum to %d, aggregate says %d", perShard, total.DiskReads)
	}
}

// TestShardedConcurrentUse drives parallel queries and inserts through the
// worker pool; run under -race this checks the engine's synchronization.
func TestShardedConcurrentUse(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	segs := randomPopulation(r, 150, 8)
	_, sdb := equivPair(t, segs, 4, true)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 3 {
				case 0:
					x := float64(i * 3 % 70)
					if _, err := sdb.Snapshot(Rect{Min: []float64{x, 10}, Max: []float64{x + 20, 40}}, 1, 3); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := sdb.KNN([]float64{50, 50}, 2, 5); err != nil {
						t.Error(err)
						return
					}
				case 2:
					id := ObjectID(10_000 + g*1000 + i)
					err := sdb.Insert(id, Segment{T0: 1, T1: 2, From: []float64{1, 1}, To: []float64{2, 2}})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(Options{Dims: -2}); err == nil {
		t.Fatal("negative Dims accepted")
	}
	if _, err := Open(Options{BufferPages: -1}); err == nil {
		t.Fatal("negative BufferPages accepted")
	}
	if _, err := OpenSharded(ShardOptions{Shards: 0}); err == nil {
		t.Fatal("zero Shards accepted")
	}
	if _, err := OpenSharded(ShardOptions{Shards: 2, Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := OpenSharded(ShardOptions{Shards: 2, Options: Options{Dims: -1}}); err == nil {
		t.Fatal("sharded open accepted negative Dims")
	}
}
