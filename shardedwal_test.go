package dynq

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func shardSeg(x float64) Segment {
	return Segment{T0: 0, T1: 10, From: []float64{x, x}, To: []float64{x + 1, x + 1}}
}

// shardBatch builds n insert updates with ids starting at base.
func shardBatch(base ObjectID, n int) []MotionUpdate {
	ups := make([]MotionUpdate, n)
	for i := range ups {
		ups[i] = MotionUpdate{ID: base + ObjectID(i), Segment: shardSeg(float64(base) + float64(i))}
	}
	return ups
}

// openShardedWAL creates a fresh WAL-armed sharded database for tests.
func openShardedWAL(t *testing.T, path string, shards int) *ShardedDB {
	t.Helper()
	db, err := OpenSharded(ShardOptions{
		Options: Options{Path: path},
		Shards:  shards,
		WAL:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDurabilityRequiresWAL: requesting an explicit durability level
// against a WAL-less backend must fail with the typed ErrNoWAL instead
// of acking the write as durable — for both database flavors, while
// the adaptive default and explicit async still apply in memory.
func TestDurabilityRequiresWAL(t *testing.T) {
	mem, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	sharded, err := OpenSharded(ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	for name, db := range map[string]Database{"single": mem, "sharded": sharded} {
		for _, d := range []Durability{DurabilityGroupCommit, DurabilitySync} {
			err := db.ApplyUpdates(context.Background(), shardBatch(1, 4), WriteOptions{Durability: d})
			if !errors.Is(err, ErrNoWAL) {
				t.Errorf("%s: durability %d without a WAL = %v, want ErrNoWAL", name, d, err)
			}
		}
		if db.(interface{ Len() int }).Len() != 0 {
			t.Errorf("%s: rejected batch was partially applied", name)
		}
		for _, d := range []Durability{DurabilityDefault, DurabilityAsync} {
			if err := db.ApplyUpdates(context.Background(), shardBatch(ObjectID(100*int(d)+100), 4), WriteOptions{Durability: d}); err != nil {
				t.Errorf("%s: durability %d without a WAL = %v, want nil", name, d, err)
			}
		}
	}

	// With logs armed, every level is accepted.
	db := openShardedWAL(t, filepath.Join(t.TempDir(), "durable.dynq"), 2)
	defer db.Close()
	for _, d := range []Durability{DurabilityDefault, DurabilityGroupCommit, DurabilitySync, DurabilityAsync} {
		if err := db.ApplyUpdates(context.Background(), shardBatch(ObjectID(10*int(d)+1), 4), WriteOptions{Durability: d}); err != nil {
			t.Errorf("durability %d with WALs armed = %v, want nil", d, err)
		}
	}
}

// TestOpenShardedRefusesExistingFiles: creating over an existing shard
// set must refuse instead of truncating it (the destructive-reopen bug).
func TestOpenShardedRefusesExistingFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db, err := OpenSharded(ShardOptions{Options: Options{Path: path}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyUpdates(context.Background(), shardBatch(1, 8), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(ShardOptions{Options: Options{Path: path}, Shards: 2}); err == nil {
		t.Fatal("OpenSharded truncated an existing shard set")
	} else if !strings.Contains(err.Error(), "OpenShardedRecover") {
		t.Fatalf("refusal should point at OpenShardedRecover, got: %v", err)
	}

	// The refused open must not have damaged the files.
	re, reps, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 8 {
		t.Fatalf("reopen found %d segments, want 8", re.Len())
	}
	if reps == nil {
		t.Fatal("recovering an existing set returned no reports")
	}
}

// TestOpenShardedRecoverPreservesContents: the round trip that used to
// lose everything — write, sync, close, reopen — must preserve every
// shard's contents, with and without logs.
func TestOpenShardedRecoverPreservesContents(t *testing.T) {
	for _, withWAL := range []bool{false, true} {
		t.Run(fmt.Sprintf("wal=%v", withWAL), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db.dynq")
			db, err := OpenSharded(ShardOptions{Options: Options{Path: path}, Shards: 3, WAL: withWAL})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.ApplyUpdates(context.Background(), shardBatch(1, 64), WriteOptions{}); err != nil {
				t.Fatal(err)
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, reps, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Len() != 64 {
				t.Fatalf("reopen found %d segments, want 64", re.Len())
			}
			if len(reps) != 3 {
				t.Fatalf("got %d recovery reports, want 3", len(reps))
			}
			for i, rep := range reps {
				if rep.WALArmed != withWAL {
					t.Errorf("shard %d report WALArmed = %v, want %v", i, rep.WALArmed, withWAL)
				}
			}
			if re.WALArmed() != withWAL {
				t.Errorf("reopened WALArmed() = %v, want %v (auto-detect)", re.WALArmed(), withWAL)
			}
			rs, err := re.Snapshot(Rect{Min: []float64{0, 0}, Max: []float64{100, 100}}, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 64 {
				t.Fatalf("snapshot found %d results, want 64", len(rs))
			}
			if err := re.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenShardedRecoverShardCountChange: reopening under a different
// shard count must error cleanly up front — objects are placed by hash
// mod shards, so a silent open would misroute every lookup.
func TestOpenShardedRecoverShardCountChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db := openShardedWAL(t, path, 4)
	if err := db.ApplyUpdates(context.Background(), shardBatch(1, 16), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, wrong := range []int{2, 8} {
		_, _, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: wrong})
		if err == nil {
			t.Fatalf("reopen with %d shards (created with 4) succeeded", wrong)
		}
		if !strings.Contains(err.Error(), "shard count") {
			t.Errorf("reopen with %d shards: error should explain the shard-count rule, got: %v", wrong, err)
		}
	}

	// The right count still works after the refused attempts.
	re, _, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 16 {
		t.Fatalf("reopen found %d segments, want 16", re.Len())
	}
}

// TestShardedWALCrashReplay: acked batches survive a crash (no final
// Sync) through per-shard log replay; each shard's report accounts for
// its own records.
func TestShardedWALCrashReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db := openShardedWAL(t, path, 3)
	if err := db.ApplyUpdates(context.Background(), shardBatch(1, 48), WriteOptions{Durability: DurabilityGroupCommit}); err != nil {
		t.Fatal(err)
	}
	if err := crashShardedDB(db); err != nil {
		t.Fatal(err)
	}

	re, reps, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 48 {
		t.Fatalf("recovered %d segments, want 48", re.Len())
	}
	replayed := 0
	for _, rep := range reps {
		replayed += rep.WALUpdatesReplayed
	}
	if replayed != 48 {
		t.Fatalf("reports account for %d replayed updates, want 48", replayed)
	}
}

// TestShardedWALOneTornLog: one shard's log torn mid-record while its
// neighbors stay clean — the torn shard loses only its un-acked tail,
// the clean shards replay fully, and acked data survives everywhere.
func TestShardedWALOneTornLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db := openShardedWAL(t, path, 3)

	// Acked phase: must survive any tear.
	if err := db.ApplyUpdates(context.Background(), shardBatch(1, 30), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	ackedLen := db.Len()
	ackedSize, err := fileSize(shardWALPath(path, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Async tail: find ids owned by shard 0 so the un-acked records land
	// in the log we are about to tear.
	var shard0 []MotionUpdate
	for id := ObjectID(1000); len(shard0) < 8; id++ {
		if db.ShardFor(id) == 0 {
			shard0 = append(shard0, MotionUpdate{ID: id, Segment: shardSeg(float64(id % 97))})
		}
	}
	for _, u := range shard0 {
		if err := db.ApplyUpdates(context.Background(), []MotionUpdate{u}, WriteOptions{Durability: DurabilityAsync}); err != nil {
			t.Fatal(err)
		}
	}
	if err := crashShardedDB(db); err != nil {
		t.Fatal(err)
	}

	// Tear shard 0's log back into its un-acked region; leave 1 and 2.
	f, err := os.OpenFile(shardWALPath(path, 0), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	total, err := fileSize(shardWALPath(path, 0))
	if err != nil {
		t.Fatal(err)
	}
	if total <= ackedSize {
		t.Fatalf("async phase appended nothing to shard 0's log (%d <= %d)", total, ackedSize)
	}
	// Cut one byte off the final record: guaranteed mid-record, so the
	// reopen must discard a torn tail (a boundary-aligned cut would read
	// as a clean shorter log).
	if err := f.Truncate(total - 1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, reps, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() < ackedLen {
		t.Fatalf("recovered %d segments, want >= %d acked", re.Len(), ackedLen)
	}
	if !reps[0].WALTornTail {
		t.Error("shard 0's report should flag the torn tail")
	}
	if reps[1].WALTornTail || reps[2].WALTornTail {
		t.Error("clean shards flagged a torn tail")
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedWALCheckpointLagDivergence: a checkpoint taken while only
// some shards have later writes leaves the logs at different lags;
// recovery must replay exactly each shard's own gap.
func TestShardedWALCheckpointLagDivergence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db := openShardedWAL(t, path, 2)

	if err := db.ApplyUpdates(context.Background(), shardBatch(1, 20), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil { // both logs checkpointed
		t.Fatal(err)
	}

	// Post-checkpoint writes routed to shard 0 only: its log diverges
	// from its checkpoint while shard 1's stays flush.
	var only0 []MotionUpdate
	for id := ObjectID(2000); len(only0) < 10; id++ {
		if db.ShardFor(id) == 0 {
			only0 = append(only0, MotionUpdate{ID: id, Segment: shardSeg(float64(id % 89))})
		}
	}
	if err := db.ApplyUpdates(context.Background(), only0, WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}
	infos, ok := db.WALInfoByShard()
	if !ok {
		t.Fatal("WALInfoByShard reported no logs")
	}
	if infos[0].LiveRecords == 0 {
		t.Fatalf("shard 0 should lag its checkpoint: %+v", infos[0])
	}
	if infos[1].LiveRecords != 0 {
		t.Fatalf("shard 1 should be flush with its checkpoint: %+v", infos[1])
	}
	want := db.Len()
	if err := crashShardedDB(db); err != nil {
		t.Fatal(err)
	}

	re, reps, err := OpenShardedRecover(path, ShardRecoverOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != want {
		t.Fatalf("recovered %d segments, want %d", re.Len(), want)
	}
	if reps[0].WALRecordsReplayed != 1 {
		t.Errorf("shard 0 replayed %d records, want 1 (its post-checkpoint batch)", reps[0].WALRecordsReplayed)
	}
	if reps[1].WALRecordsReplayed != 0 {
		t.Errorf("shard 1 replayed %d records, want 0 (checkpoint covered everything)", reps[1].WALRecordsReplayed)
	}
}

// TestShardedWALTelemetryAggregation: the per-shard logs fold into one
// WAL telemetry section with Logs saying how many, and the metrics
// registry carries {shard="i"}-labeled dynq_wal_* series.
func TestShardedWALTelemetryAggregation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dynq")
	db := openShardedWAL(t, path, 2)
	defer db.Close()
	if err := db.ApplyUpdates(context.Background(), shardBatch(1, 32), WriteOptions{Durability: DurabilitySync}); err != nil {
		t.Fatal(err)
	}

	tel, ok := db.WALTelemetry(nil)
	if !ok {
		t.Fatal("WALTelemetry reported no logs on a WAL-armed database")
	}
	if tel.Logs != 2 {
		t.Errorf("telemetry Logs = %d, want 2", tel.Logs)
	}
	if tel.Appends == 0 || tel.Fsyncs == 0 {
		t.Errorf("aggregated counters empty after a sync batch: %+v", tel)
	}
	var wantAppends int64
	infos, _ := db.WALInfoByShard()
	for _, info := range infos {
		wantAppends += int64(info.LastLSN)
	}
	if tel.LastLSN != uint64(wantAppends) {
		t.Errorf("aggregated LastLSN = %d, want the per-log sum %d", tel.LastLSN, wantAppends)
	}
}

// TestMergeRecoveryReports exercises the fold used by dqserver to feed
// a single-report consumer.
func TestMergeRecoveryReports(t *testing.T) {
	if MergeRecoveryReports(nil) != nil {
		t.Error("merging no reports should yield nil")
	}
	a := &RecoveryReport{HeaderSeq: 3, PagesChecked: 5, Segments: 10, WALArmed: true, WALRecordsReplayed: 2}
	b := &RecoveryReport{HeaderSeq: 7, PagesChecked: 4, Segments: 6, WALTornTail: true}
	m := MergeRecoveryReports([]*RecoveryReport{a, b, nil})
	if m.HeaderSeq != 7 || m.PagesChecked != 9 || m.Segments != 16 {
		t.Errorf("merged counts wrong: %+v", m)
	}
	if !m.WALArmed || !m.WALTornTail || m.WALRecordsReplayed != 2 {
		t.Errorf("merged WAL flags wrong: %+v", m)
	}
}

// TestWALSoakShardedSmoke runs a short sharded soak as a unit test; the
// full run is dqbench -faults -wal -shards N.
func TestWALSoakShardedSmoke(t *testing.T) {
	rep, err := WALSoak(WALSoakOptions{Cycles: 8, Seed: 7, Batch: 16, Shards: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("sharded soak harness error: %v (%s)", err, rep)
	}
	if rep.LostAcked != 0 {
		t.Fatalf("acknowledged writes lost: %s", rep)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("wrong answers after replay: %s", rep)
	}
	if rep.Tears == 0 || rep.QueriesCompared == 0 {
		t.Fatalf("sharded soak exercised nothing: %s", rep)
	}
}
